"""The ``repro`` command-line interface.

One argparse subcommand tree, installed as the ``repro`` console
script (``pyproject.toml``) and doubling as ``python -m repro``:

- ``repro solve``   — protect one solve and print its report;
- ``repro table1``  — regenerate the paper's Table 1 (model validation);
- ``repro figure1`` — regenerate the paper's Figure 1 (time vs MTBF);
- ``repro study run <spec.json>`` — execute a declarative
  :class:`~repro.api.study.Study` exported with ``Study.save()``;
- ``repro report <store.jsonl>`` — summarize a campaign result store;
- ``repro trace summarize <path>`` — summarize JSONL trace shards
  written by ``--trace-dir`` (see :mod:`repro.obs`).

The campaign flags (``--jobs`` / ``--store`` / ``--resume`` /
``--progress`` / ``--trace-dir`` / ``--base-seed``) are one shared
option group wired into every subcommand that executes tasks, so
fan-out, resume and tracing behave identically everywhere.

:func:`main` returns an exit code instead of raising ``SystemExit``
(argparse's exits — including ``--help``'s code 0 and usage-error code
2 — are translated), which keeps it embeddable;
:func:`entry` is the console-script wrapper adding the BrokenPipeError
etiquette.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main", "entry"]


def _banner() -> str:
    import repro

    return (
        f"repro {repro.__version__} — backward + forward recovery for "
        "silent errors in iterative solvers\n"
        "(reproduction of Fasi, Robert, Uçar, PDSEC 2015)"
    )


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    """The shared campaign-engine flags (fan-out, persistence, resume)."""
    group = parser.add_argument_group("campaign engine")
    group.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker processes (default: all cores; 1 = serial; "
             "any value is bit-identical to serial)",
    )
    group.add_argument(
        "--store", type=str, default=None, metavar="URL",
        help="result store for crash-safe persistence / resume: a bare "
             "path (single-file JSONL), sharded:DIR (hash-partitioned "
             "shards, concurrent writers) or sqlite:FILE.db (WAL "
             "database, concurrent writers)",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="reuse finished tasks from --store instead of starting fresh",
    )
    group.add_argument(
        "--progress", choices=("bar", "json", "none"), default="bar",
        help="stderr progress style: human status line (default), "
             "newline-delimited JSON objects, or silence",
    )
    group.add_argument(
        "--trace-dir", type=str, default=None, metavar="DIR",
        help="collect per-worker JSONL trace shards of every solve event "
             "under DIR (summarize with 'repro trace summarize DIR')",
    )
    group.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock deadline for each task; a timed-out "
             "task is retried (--retries) and eventually quarantined",
    )
    group.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-attempts for a failing or timed-out task (with "
             "exponential backoff); a task that exhausts them is recorded "
             "as a quarantine entry instead of failing the campaign "
             "(exit code 3)",
    )
    group.add_argument(
        "--chaos", type=str, default=None, metavar="SPEC",
        help="deterministic fault injection for harness testing, e.g. "
             "'kill=0.2,hang=0.05,seed=7' (sites: kill/hang/tear; "
             "'off' disables; default: the REPRO_CHAOS environment)",
    )


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the table1 / figure1 drivers."""
    parser.add_argument(
        "--base-seed", type=int, default=2015, help="campaign base seed"
    )
    parser.add_argument(
        "--scale", type=int, default=16, help="matrix size divisor (1 = paper scale)"
    )
    parser.add_argument(
        "--reps", type=int, default=10, help="repetitions per point (paper: 50)"
    )
    parser.add_argument(
        "--uids", type=int, nargs="*", default=None, help="subset of matrix ids"
    )
    parser.add_argument("--eps", type=float, default=1e-6, help="CG stopping epsilon")
    parser.add_argument(
        "--method", type=str, default="cg", metavar="M1,M2,...",
        help="comma-separated solver axis: cg, bicgstab, pcg (default: cg)",
    )
    parser.add_argument(
        "--backend", type=str, default="reference",
        help="kernel backend: reference (bit-identical default), scipy, dense, numba, threaded",
    )
    parser.add_argument("--csv", type=str, default=None, help="also dump raw rows to CSV")
    parser.add_argument(
        "--paper-scale", action="store_true", help="scale=1, reps=50 (slow)"
    )
    parser.add_argument(
        "--adaptive", type=str, default=None, metavar="SPEC",
        help="adaptive sequential sampling: stop each task's repetitions "
             "once the CI half-width on the mean time falls below target, "
             "e.g. 'ci=0.05,conf=0.95,min=5,max=200' (--reps is then "
             "ignored in favour of the policy's max); per-rep fault "
             "streams are prefix-shared with fixed runs, so stopping at "
             "k reps is bit-identical to the first k of a fixed run",
    )
    _add_campaign_options(parser)


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` subcommand tree."""
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description=_banner(),
        epilog="see README.md for the library API and examples/ for runnable demos",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    # --- solve ------------------------------------------------------------
    p = sub.add_parser(
        "solve",
        help="protect one linear solve and print its report",
        description="Run one fault-tolerant solve on a suite matrix (--uid), "
                    "a generated stencil system (--n) or a Matrix-Market file "
                    "(--matrix) and print the report.",
    )
    src = p.add_mutually_exclusive_group()
    src.add_argument(
        "--uid", type=int, default=2213,
        help="suite matrix id (the paper's Table-1 ids; default: 2213)",
    )
    src.add_argument(
        "--n", type=int, default=None,
        help="instead of a suite matrix: generate an n-point 2-D stencil SPD system",
    )
    src.add_argument(
        "--matrix", type=str, default=None, metavar="PATH|NAME",
        help="instead of a suite matrix: a Matrix-Market file (.mtx/.mtx.gz) "
             "or a workload name registered under $REPRO_MATRIX_DIR",
    )
    p.add_argument(
        "--scale", type=int, default=None,
        help="suite-matrix size divisor (default 32; only with --uid)",
    )
    p.add_argument("--method", type=str, default="cg", help="cg, bicgstab or pcg")
    p.add_argument(
        "--backend", type=str, default="reference",
        help="kernel backend: reference (bit-identical default), scipy, dense, numba, threaded",
    )
    p.add_argument(
        "--scheme", type=str, default="abft-correction",
        help="online-detection, abft-detection or abft-correction",
    )
    p.add_argument(
        "--alpha", type=float, default=1.0 / 16.0,
        help="fault-rate constant (strikes per iteration; 0 disables injection)",
    )
    p.add_argument("--seed", type=int, default=2015, help="fault-stream seed")
    p.add_argument(
        "--interval", type=str, default="auto",
        help="checkpoint interval s (integer or 'auto' = model-optimal)",
    )
    p.add_argument(
        "--d", type=str, default="auto",
        help="verification interval d (integer or 'auto'; >1 only for online-detection)",
    )
    p.add_argument("--eps", type=float, default=1e-6, help="stopping epsilon")
    p.add_argument("--maxiter", type=int, default=None, help="executed-iteration cap")
    p.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    p.set_defaults(func=_cmd_solve)

    # --- table1 / figure1 -------------------------------------------------
    p = sub.add_parser(
        "table1",
        help="regenerate the paper's Table 1 (model validation)",
        description="Sweep the checkpoint interval around the model prediction "
                    "and report the empirical optimum per (matrix, method, scheme).",
    )
    _add_experiment_options(p)
    p.add_argument(
        "--s-span", type=int, default=6,
        help="interval-sweep half-width around the model prediction",
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "figure1",
        help="regenerate the paper's Figure 1 (time vs normalized MTBF)",
        description="Compare the three protection schemes across MTBF values.",
    )
    _add_experiment_options(p)
    p.add_argument(
        "--mtbf", type=float, nargs="*", default=None,
        help="x-axis points 1/alpha (default: the paper's span)",
    )
    p.set_defaults(func=_cmd_figure1)

    # --- study ------------------------------------------------------------
    p = sub.add_parser(
        "study",
        help="run a declarative Study exported to JSON",
        description="Operate on declarative Study specs (see repro.api.Study).",
    )
    study_sub = p.add_subparsers(dest="study_command", metavar="ACTION")
    pr = study_sub.add_parser(
        "run",
        help="execute a Study spec through the campaign engine",
        description="Compile a Study spec to tasks and execute them; with "
                    "--store/--resume, completed tasks are served from the store.",
    )
    pr.add_argument("spec", type=str, help="Study spec JSON (written by Study.save())")
    pr.add_argument(
        "--dry-run", action="store_true",
        help="print the compiled task count and hashes without executing",
    )
    pr.add_argument("--csv", type=str, default=None, help="dump typed points to CSV")
    pr.add_argument(
        "--adaptive", type=str, default=None, metavar="SPEC",
        help="override the study's sampling policy, e.g. "
             "'ci=0.05,conf=0.95,min=5,max=200' (see table1 --adaptive)",
    )
    _add_campaign_options(pr)
    p.set_defaults(func=_cmd_study)

    # --- trace ------------------------------------------------------------
    p = sub.add_parser(
        "trace",
        help="inspect structured trace shards written by --trace-dir",
        description="Operate on JSONL trace events (see repro.obs).",
    )
    trace_sub = p.add_subparsers(dest="trace_command", metavar="ACTION")
    pt = trace_sub.add_parser(
        "summarize",
        help="fold a trace file or shard directory into a summary",
        description="Read every event from a .jsonl trace file (or every "
                    "shard-*.jsonl in a directory) and print per-kind counts, "
                    "per-phase time shares and the fault timeline.",
    )
    pt.add_argument("path", type=str, help="trace .jsonl file or shard directory")
    pt.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    pt.add_argument(
        "--limit", type=int, default=20,
        help="fault-timeline rows to show (default 20; 0 = hide)",
    )
    p.set_defaults(func=_cmd_trace)

    # --- report -----------------------------------------------------------
    p = sub.add_parser(
        "report",
        help="summarize a campaign result store",
        description="Stream a result store (bare path = JSONL, sharded:DIR, "
                    "sqlite:FILE.db) into per-(experiment, method, scheme) "
                    "aggregates without re-running anything; partial stores "
                    "of still-running campaigns summarize fine.",
    )
    p.add_argument("store", type=str, help="result store path or URL")
    p.add_argument("--json", action="store_true", help="print the summary as JSON")
    p.set_defaults(func=_cmd_report)

    # --- store ------------------------------------------------------------
    p = sub.add_parser(
        "store",
        help="inspect and migrate campaign result stores",
        description="Operate on result stores of any backend "
                    "(see repro.store): bare path = single-file JSONL, "
                    "sharded:DIR, sqlite:FILE.db.",
    )
    store_sub = p.add_subparsers(dest="store_command", metavar="ACTION")
    pi = store_sub.add_parser(
        "info",
        help="show a store's backend, record count and layout",
        description="Print the resolved backend, distinct record count and "
                    "backend-specific layout details (shard fill, lease "
                    "activity) without materializing the store.",
    )
    pi.add_argument("store", type=str, help="result store path or URL")
    pi.add_argument("--json", action="store_true", help="print as JSON")
    pm = store_sub.add_parser(
        "migrate",
        help="copy every record of one store into an empty one",
        description="Stream records losslessly between backends "
                    "(jsonl <-> sharded <-> sqlite).  Task hashes are "
                    "preserved, so --resume against the destination "
                    "recomputes nothing and aggregates stay bit-identical.",
    )
    pm.add_argument("src", type=str, help="source store path or URL")
    pm.add_argument("dst", type=str, help="destination store path or URL (must be empty)")
    pc = store_sub.add_parser(
        "compact",
        help="fold a store's latest records into an empty one",
        description="Write the store's folded view (duplicate hashes "
                    "collapse last-wins, telemetry records dropped) into an "
                    "empty destination.  With --drop-quarantined, poison-task "
                    "records are dropped too, so a resumed campaign retries "
                    "them.",
    )
    pc.add_argument("src", type=str, help="source store path or URL")
    pc.add_argument("dst", type=str, help="destination store path or URL (must be empty)")
    pc.add_argument(
        "--drop-quarantined", action="store_true",
        help="also drop kind=quarantine records (re-queues those tasks)",
    )
    pv = store_sub.add_parser(
        "verify",
        help="integrity-scan a store's record checksums",
        description="Count intact (sealed / pre-checksum) and corrupt "
                    "records plus torn-tail state without modifying "
                    "anything; exits 1 if corruption was found.",
    )
    pv.add_argument("store", type=str, help="result store path or URL")
    pv.add_argument("--json", action="store_true", help="print as JSON")
    pp = store_sub.add_parser(
        "repair",
        help="re-derive a clean store from the intact records",
        description="Stream every record that parses and passes its "
                    "checksum into an empty destination; dropped tasks are "
                    "simply re-executed by the next --resume.",
    )
    pp.add_argument("src", type=str, help="source store path or URL")
    pp.add_argument("dst", type=str, help="destination store path or URL (must be empty)")
    p.set_defaults(func=_cmd_store)

    # --- serve ------------------------------------------------------------
    p = sub.add_parser(
        "serve",
        help="run Study specs through a lease-coordinated worker fleet",
        description="Start N long-lived workers that claim tasks from a "
                    "shared concurrent store (sharded:DIR or sqlite:FILE.db) "
                    "via leases with heartbeats, stealing work from crashed "
                    "peers.  Several serve invocations may share one store "
                    "concurrently; per-task results are identical to "
                    "--jobs 1.",
    )
    p.add_argument(
        "specs", type=str, nargs="+", metavar="SPEC",
        help="Study spec JSON file(s) (written by Study.save()); several "
             "specs multiplex over the same fleet",
    )
    p.add_argument(
        "--store", type=str, required=True, metavar="URL",
        help="concurrent result store: sharded:DIR or sqlite:FILE.db "
             "(single-file JSONL stores cannot coordinate workers)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the fleet (default: 2)",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="SECONDS",
        help="crash-detection horizon: a worker silent this long loses its "
             "claimed tasks to the rest of the fleet (default: 60)",
    )
    p.add_argument(
        "--progress", choices=("bar", "json", "none"), default="bar",
        help="stderr progress style (as for the campaign commands)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock deadline inside each worker",
    )
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="per-task re-attempts before quarantine (exit code 3)",
    )
    p.add_argument(
        "--chaos", type=str, default=None, metavar="SPEC",
        help="deterministic fault injection into the workers, e.g. "
             "'kill=0.2,seed=7' (the dispatcher never injects into itself)",
    )
    p.add_argument(
        "--max-worker-restarts", type=int, default=None, metavar="N",
        help="how many crashed workers the dispatcher revives before "
             "letting the fleet die off (default: 4x --workers)",
    )
    p.add_argument(
        "--trace-dir", type=str, default=None, metavar="DIR",
        help="collect per-worker JSONL trace shards (solve events plus "
             "retry/quarantine/restart harness events)",
    )
    p.set_defaults(func=_cmd_serve)

    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _parse_methods(parser: argparse.ArgumentParser, raw: str) -> "list[str]":
    from repro.core.methods import Method

    try:
        methods = [Method.parse(m).value for m in raw.split(",") if m.strip()]
    except ValueError as exc:
        parser.error(str(exc))
    if not methods:
        parser.error("--method must name at least one solver")
    return methods


def _check_campaign_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Validate the shared campaign flags; returns the resolved job count."""
    from repro.campaign.executor import default_jobs

    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.store:
        _check_store_arg(parser, args.store, resume=args.resume)
    _check_hardening_args(parser, args)
    return default_jobs() if args.jobs is None else args.jobs


def _check_hardening_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Validate the self-healing / chaos flags shared by every campaign
    command (serve included)."""
    if getattr(args, "task_timeout", None) is not None and args.task_timeout <= 0:
        parser.error(f"--task-timeout must be > 0, got {args.task_timeout:g}")
    if getattr(args, "retries", 0) < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if getattr(args, "chaos", None) is not None:
        from repro.chaos import ChaosPolicy

        try:
            ChaosPolicy.parse(args.chaos)
        except ValueError as exc:
            parser.error(f"--chaos {args.chaos!r}: {exc}")


def _check_adaptive_arg(
    parser: argparse.ArgumentParser, spec: "str | None"
) -> str:
    """Validate --adaptive and return the canonical sampling spec ("" = off)."""
    if spec is None:
        return ""
    from repro.adaptive import SamplingPolicy

    try:
        return SamplingPolicy.parse(spec).spec()
    except ValueError as exc:
        parser.error(f"--adaptive {spec!r}: {exc}")


def _check_store_arg(
    parser: argparse.ArgumentParser, spec: str, *, resume: bool
) -> None:
    """Reject a bad --store selector, and a non-empty one without --resume."""
    from repro.campaign.store import StoreError
    from repro.store import open_store

    try:
        store = open_store(spec)
        populated = not resume and store.count() > 0
    except (ValueError, StoreError) as exc:
        parser.error(f"--store {spec!r}: {exc}")
    if populated:
        parser.error(
            f"store {spec!r} already has results; "
            "pass --resume to continue it or remove it to start fresh"
        )


def _cmd_solve(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.api.facade import CheckpointSpec, FaultSpec, solve
    from repro.core.methods import Method, Scheme

    def interval(name: str, raw: str) -> "int | str":
        if raw == "auto":
            return raw
        try:
            v = int(raw)
        except ValueError:
            parser.error(f"{name} must be an integer or 'auto', got {raw!r}")
        if v < 1:
            parser.error(f"{name} must be >= 1, got {v}")
        return v

    if args.alpha < 0:
        parser.error(f"--alpha must be >= 0, got {args.alpha}")
    try:
        method = Method.parse(args.method)
        scheme = Scheme.parse(args.scheme)
        from repro.backends import get_backend

        get_backend(args.backend)
    except ValueError as exc:
        parser.error(str(exc))

    if args.n is not None:
        from repro.sparse.generators import stencil_spd

        if args.scale is not None:
            parser.error("--scale applies to suite matrices only; --n fixes the size")
        if args.n < 9:
            parser.error(f"--n must be >= 9, got {args.n}")
        a = stencil_spd(args.n, kind="cross", radius=2)
    elif args.matrix is not None:
        from repro.sim.matrices import get_matrix

        if args.scale is not None:
            parser.error(
                "--scale applies to suite matrices only; "
                "file-backed workloads (--matrix) cannot be rescaled"
            )
        try:
            a = get_matrix(args.matrix)
        except (KeyError, OSError, ValueError) as exc:
            parser.error(f"cannot load workload {args.matrix!r}: {exc}")
    else:
        from repro.sim.matrices import get_matrix

        try:
            a = get_matrix(args.uid, 32 if args.scale is None else args.scale)
        except KeyError as exc:
            parser.error(str(exc))
    from repro.sim.engine import make_rhs

    b = make_rhs(a)
    try:
        report = solve(
            a,
            b,
            method=method,
            scheme=scheme,
            faults=FaultSpec(alpha=args.alpha, seed=args.seed),
            checkpoint=CheckpointSpec(
                interval=interval("--interval", args.interval),
                verification_interval=interval("--d", args.d),
            ),
            eps=args.eps,
            maxiter=args.maxiter,
            backend=args.backend,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.summary())
    return 0 if report.converged else 1


def _run_experiment(
    parser: argparse.ArgumentParser, args: argparse.Namespace, kind: str
) -> int:
    from repro.sim.results import format_figure1, format_table1, to_csv

    if args.paper_scale:
        args.scale, args.reps = 1, 50
    methods = _parse_methods(parser, args.method)
    try:
        from repro.backends import get_backend

        get_backend(args.backend)
    except ValueError as exc:
        parser.error(str(exc))
    jobs = _check_campaign_args(parser, args)
    from repro.obs.metrics import METRICS

    q_before = METRICS.count("campaign.quarantined")
    common = dict(
        scale=args.scale,
        reps=args.reps,
        uids=args.uids,
        eps=args.eps,
        base_seed=args.base_seed,
        jobs=jobs,
        store=args.store,
        progress=args.progress,
        methods=methods,
        backend=args.backend,
        trace_dir=args.trace_dir,
        task_timeout=args.task_timeout,
        retries=args.retries,
        chaos=args.chaos,
        sampling=_check_adaptive_arg(parser, args.adaptive),
    )
    try:
        if kind == "table1":
            from repro.sim.experiments import run_table1

            if args.s_span < 0:
                parser.error(f"--s-span must be >= 0, got {args.s_span}")
            rows = run_table1(s_span=args.s_span, **common)
            print(format_table1(rows))
            if args.csv:
                to_csv(rows, args.csv)
        else:
            from repro.sim.experiments import run_figure1

            pts = run_figure1(mtbf_values=args.mtbf, **common)
            print(format_figure1(pts))
            if args.csv:
                to_csv(pts, args.csv)
    except ValueError as exc:
        # A quarantined poison task leaves the full aggregation short;
        # the campaign itself completed and the store holds everything
        # that did run — report and exit 3 rather than crash.
        if METRICS.count("campaign.quarantined") > q_before:
            print(f"error: {exc}", file=sys.stderr)
            return 3
        raise
    quarantined = METRICS.count("campaign.quarantined") - q_before
    if quarantined:
        print(
            f"warning: {int(quarantined)} task(s) quarantined; re-queue "
            "with `repro store compact --drop-quarantined`",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_table1(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    return _run_experiment(parser, args, "table1")


def _cmd_figure1(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    return _run_experiment(parser, args, "figure1")


def _cmd_study(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.study_command != "run":
        parser.error("expected an action: repro study run <spec.json>")
    from repro.api.study import Study

    try:
        study = Study.load(args.spec)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        parser.error(f"cannot load study spec {args.spec!r}: {exc}")
    if args.adaptive is not None:
        study.adaptive(_check_adaptive_arg(parser, args.adaptive))
    tasks = study.tasks()
    if args.dry_run:
        print(f"study {study.name!r}: {len(tasks)} tasks")
        for t in tasks:
            print(f"  {t.task_hash()[:16]}  {t.experiment} uid={t.uid} "
                  f"method={t.method} backend={t.backend} scheme={t.scheme} "
                  f"alpha={t.alpha:g} s={t.s} d={t.d} reps={t.reps}")
        return 0
    jobs = _check_campaign_args(parser, args)
    print(f"study {study.name!r}: {len(tasks)} tasks over {jobs} worker(s)",
          file=sys.stderr)
    result = study.run(
        jobs=jobs,
        store=args.store,
        progress=args.progress,
        trace_dir=args.trace_dir,
        task_timeout=args.task_timeout,
        retries=args.retries,
        chaos=args.chaos,
    )
    if result.quarantined:
        # The preset folds need every record; fall through to the
        # generic table, which reports the healthy points.
        print(
            f"warning: {result.quarantined} task(s) quarantined; re-queue "
            "with `repro store compact --drop-quarantined`",
            file=sys.stderr,
        )
        print(result.format_table())
    elif result.tasks and all(t.experiment == "table1" for t in result.tasks):
        from repro.sim.results import format_table1

        print(format_table1(result.table1_rows()))
    elif result.tasks and all(t.experiment == "figure1" for t in result.tasks):
        from repro.sim.results import format_figure1

        print(format_figure1(result.figure1_points()))
    else:
        print(result.format_table())
    if args.csv:
        import csv

        rows = [
            {
                "uid": p.uid, "method": p.method, "scheme": p.scheme,
                "alpha": p.alpha, "s": p.s, "d": p.d, "n": p.n,
                **{m: getattr(p.stats, m) for m in result.metrics},
            }
            for p in result.points()
        ]
        with open(args.csv, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]) if rows else [])
            writer.writeheader()
            writer.writerows(rows)
    return 3 if result.quarantined else 0


def _cmd_trace(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.trace_command != "summarize":
        parser.error("expected an action: repro trace summarize <path>")
    import json
    import pathlib

    from repro.obs.summarize import format_trace_summary, summarize_trace

    if not pathlib.Path(args.path).exists():
        parser.error(f"no such trace file or directory: {args.path}")
    if args.limit < 0:
        parser.error(f"--limit must be >= 0, got {args.limit}")
    try:
        summary = summarize_trace(args.path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_trace_summary(summary, timeline_limit=args.limit))
    return 0


def _cmd_report(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    import json

    from repro.api.report import format_summary, summarize_store
    from repro.campaign.store import StoreError
    from repro.store import store_exists

    try:
        if not store_exists(args.store):
            parser.error(f"no such store: {args.store}")
        summary = summarize_store(args.store)
    except ValueError as exc:  # bad URL (unknown scheme, empty path)
        parser.error(f"store {args.store!r}: {exc}")
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(format_summary(summary))
    return 0


def _cmd_store(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    import json

    from repro.campaign.store import StoreError
    from repro.store import (
        compact_store,
        migrate_store,
        open_store,
        repair_store,
        verify_store,
    )

    if args.store_command == "migrate":
        try:
            moved = migrate_store(args.src, args.dst)
        except (ValueError, StoreError) as exc:
            parser.error(str(exc))
        print(f"migrated {moved} record(s): {args.src} -> {args.dst}")
        return 0
    if args.store_command == "compact":
        try:
            kept = compact_store(
                args.src, args.dst, drop_quarantined=args.drop_quarantined
            )
        except (ValueError, StoreError) as exc:
            parser.error(str(exc))
        print(f"compacted to {kept} record(s): {args.src} -> {args.dst}")
        return 0
    if args.store_command == "verify":
        try:
            report = verify_store(args.store)
        except (ValueError, StoreError) as exc:
            parser.error(f"store {args.store!r}: {exc}")
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            for key in ("url", "records", "sealed", "unsealed", "corrupt",
                        "torn_tail"):
                print(f"{key}: {report[key]}")
        return 1 if report["corrupt"] or report["torn_tail"] else 0
    if args.store_command == "repair":
        try:
            kept, dropped = repair_store(args.src, args.dst)
        except (ValueError, StoreError) as exc:
            parser.error(str(exc))
        print(
            f"repaired: kept {kept} record(s), dropped {dropped} corrupt: "
            f"{args.src} -> {args.dst}"
        )
        return 0
    if args.store_command != "info":
        parser.error(
            "expected an action: repro store info <url> | "
            "repro store migrate|compact|repair <src> <dst> | "
            "repro store verify <url>"
        )
    try:
        store = open_store(args.store)
        info = store.info() if hasattr(store, "info") else {
            "backend": type(store).__name__,
            "url": store.url,
            "records": store.count(),
        }
    except (ValueError, StoreError) as exc:
        parser.error(f"store {args.store!r}: {exc}")
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    for key in ("backend", "url", "exists", "records", "bytes",
                "shards", "active_leases"):
        if key in info:
            print(f"{key}: {info[key]}")
    fill = info.get("shard_records")
    if fill is not None:
        print("shard fill: " + " ".join(str(n) for n in fill))
    return 0


def _cmd_serve(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.api.study import Study
    from repro.campaign.progress import ProgressReporter
    from repro.campaign.store import StoreError
    from repro.store import ServeInterrupted, open_store, serve_campaign

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.lease_ttl <= 0:
        parser.error(f"--lease-ttl must be > 0, got {args.lease_ttl:g}")
    if args.max_worker_restarts is not None and args.max_worker_restarts < 0:
        parser.error(
            f"--max-worker-restarts must be >= 0, got {args.max_worker_restarts}"
        )
    _check_hardening_args(parser, args)
    tasks = []
    names = []
    for spec in args.specs:
        try:
            study = Study.load(spec)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot load study spec {spec!r}: {exc}")
        names.append(study.name)
        tasks.extend(study.tasks())
    try:
        store = open_store(args.store)
    except (ValueError, StoreError) as exc:
        parser.error(f"--store {args.store!r}: {exc}")
    if not store.supports_leases:
        parser.error(
            f"--store {args.store!r}: serve mode needs a concurrent "
            "backend (sharded:DIR or sqlite:FILE.db); single-file JSONL "
            "stores cannot coordinate workers"
        )
    reporter = None
    if args.progress != "none":
        reporter = ProgressReporter(
            len(tasks), stream=sys.stderr,
            label="+".join(names), mode=args.progress,
        )
    print(
        f"serving {len(tasks)} task(s) from {len(args.specs)} spec(s) "
        f"over {args.workers} worker(s) -> {store.url}",
        file=sys.stderr,
    )
    try:
        records = serve_campaign(
            tasks,
            store,
            workers=args.workers,
            lease_ttl=args.lease_ttl,
            progress=reporter,
            task_timeout=args.task_timeout,
            retries=args.retries,
            chaos=args.chaos,
            max_worker_restarts=args.max_worker_restarts,
            trace_dir=args.trace_dir,
        )
    except ServeInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 128 + exc.signum
    except (RuntimeError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    from repro.api.report import format_summary, summarize_store

    print(format_summary(summarize_store(store)))
    quarantined = sum(1 for r in records if r.get("kind") == "quarantine")
    if quarantined:
        print(
            f"warning: {quarantined} task(s) quarantined; re-queue with "
            "`repro store compact --drop-quarantined`",
            file=sys.stderr,
        )
        return 3
    return 0


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    """Parse and dispatch; returns an exit code.

    Bare invocation prints the banner plus usage and exits 0; argparse
    exits (``--help`` → 0, usage errors → 2) are translated to return
    codes so callers never have to catch ``SystemExit``.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = build_parser()
    if not argv:
        print(_banner() + "\n")
        parser.print_help()
        return 0
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return _exit_code(exc)
    if getattr(args, "func", None) is None:
        parser.print_help()
        return 0
    try:
        return args.func(parser, args)
    except SystemExit as exc:  # parser.error() inside a subcommand
        return _exit_code(exc)


def _exit_code(exc: SystemExit) -> int:
    if exc.code is None:
        return 0
    if isinstance(exc.code, int):
        return exc.code
    print(exc.code, file=sys.stderr)
    return 1


def entry() -> None:  # pragma: no cover - exercised via the console script
    """Console-script entry point with BrokenPipeError etiquette."""
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — standard CLI etiquette.
        raise SystemExit(0)
