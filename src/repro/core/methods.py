"""Scheme descriptors and the normalized cost model.

The three schemes under study (Section 4.2):

=================  ==========================  =========================
Scheme             Verification                Recovery
=================  ==========================  =========================
ONLINE-DETECTION   Chen's tests every ``d``    rollback on detection
                   iterations
ABFT-DETECTION     1-checksum ABFT SpMxV       rollback on detection
                   every iteration
ABFT-CORRECTION    2-checksum ABFT SpMxV       forward-correct single
                   every iteration             errors; rollback only on
                                               double errors
=================  ==========================  =========================

All times are normalized to ``Titer = 1`` (the paper's convention for
the injection study).  :class:`CostModel` derives default verification
and checkpoint costs from flop counts of the actual kernels so the
model instantiation is matrix-aware, while every value stays
overridable for sensitivity studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.sparse.csr import CSRMatrix

__all__ = ["Scheme", "Method", "CostModel", "SchemeConfig"]


class Scheme(enum.Enum):
    """The three protection schemes compared in the paper."""

    ONLINE_DETECTION = "online-detection"
    ABFT_DETECTION = "abft-detection"
    ABFT_CORRECTION = "abft-correction"

    @property
    def uses_abft(self) -> bool:
        """Whether the SpMxV is checksum-protected."""
        return self is not Scheme.ONLINE_DETECTION

    @classmethod
    def parse(cls, value: "Scheme | str") -> "Scheme":
        """Coerce a scheme name (``"online-detection"``/``"abft-detection"``/
        ``"abft-correction"``), with a helpful error listing valid values."""
        if isinstance(value, Scheme):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            known = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown scheme {value!r} (expected one of: {known})") from None

    @property
    def corrects(self) -> bool:
        """Whether single errors are forward-corrected."""
        return self is Scheme.ABFT_CORRECTION


class Method(enum.Enum):
    """The protected solvers available on the resilience engine.

    The paper's Section 3 claims its protection machinery "carries over
    to CGNE, BiCG, BiCGstab"; this enum is the experiment grid's solver
    axis.  Each member maps to a recurrence plugin in
    :mod:`repro.resilience` (see
    :func:`repro.resilience.registry.run_ft_method`).
    """

    CG = "cg"
    BICGSTAB = "bicgstab"
    PCG = "pcg"  #: Jacobi-preconditioned CG

    @property
    def supported_schemes(self) -> "tuple[Scheme, ...]":
        """Schemes this solver can run under.

        Chen's stability tests (ONLINE-DETECTION) argue from the plain
        CG recurrence, so only CG supports all three; the other solvers
        take the two ABFT schemes.
        """
        if self is Method.CG:
            return (Scheme.ONLINE_DETECTION, Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION)
        return (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION)

    def supports(self, scheme: Scheme) -> bool:
        """Whether this solver can run under ``scheme``."""
        return scheme in self.supported_schemes

    @classmethod
    def parse(cls, value: "Method | str") -> "Method":
        """Coerce a method name (``"cg"``/``"bicgstab"``/``"pcg"``)."""
        if isinstance(value, Method):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            known = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown method {value!r} (expected one of: {known})") from None


@dataclass(frozen=True)
class CostModel:
    """Normalized resilience costs (units of ``Titer``).

    Attributes
    ----------
    t_iter:
        Cost of one raw CG iteration (1 by normalization).
    t_cp / t_rec:
        Checkpoint and recovery costs.  Identical for all three schemes
        (they checkpoint exactly the same state: iteration vectors plus
        the matrix — Section 3.1).
    t_verif_online:
        Chen's verification: two inner products + one extra SpMxV,
        ≈ one full iteration's SpMxV share.
    t_verif_detect:
        1-checksum ABFT overhead per iteration: O(n) checksum algebra.
    t_verif_correct:
        2-checksum ABFT overhead per iteration: twice the checksum
        algebra of detection (plus the amortized-to-zero decode cost).
    """

    t_iter: float = 1.0
    t_cp: float = 1.0
    t_rec: float = 1.0
    t_verif_online: float = 0.6
    t_verif_detect: float = 0.15
    t_verif_correct: float = 0.3

    def verification_cost(self, scheme: Scheme) -> float:
        """Per-verification cost for the given scheme."""
        if scheme is Scheme.ONLINE_DETECTION:
            return self.t_verif_online
        if scheme is Scheme.ABFT_DETECTION:
            return self.t_verif_detect
        return self.t_verif_correct

    @classmethod
    def from_matrix(
        cls, a: CSRMatrix, *, vector_ops: int = 10, include_tmr: bool = False
    ) -> "CostModel":
        """Flop-count-based cost model for matrix ``a``.

        One CG iteration costs ``2·nnz`` flops for the SpMxV plus
        ``vector_ops·n`` for the dots/axpys (Algorithm 1 has two dots
        and three axpys → 10n).  Relative to that unit:

        - Chen's verification: one SpMxV (2·nnz) + two dots (4n);
        - ABFT detection: one checksum row applied to y and x (≈4n)
          plus the x' copy and running row-pointer sum (≈3n);
        - ABFT correction: two checksum rows (≈8n) plus copies (≈4n).

        ``include_tmr=True`` additionally charges TMR's replication of
        the vector kernels (``2·vector_ops·n``) to both ABFT schemes.
        The default excludes it, matching the paper's accounting: the
        replication applies identically to both ABFT schemes (so it
        never changes their ranking) and the paper's headline claim —
        "ABFT overhead is usually smaller than Chen's verification
        cost" — refers to the checksum-specific overhead.
        """
        n = a.nrows
        nnz = a.nnz
        iter_flops = 2.0 * nnz + vector_ops * n
        online = (2.0 * nnz + 4.0 * n) / iter_flops
        tmr_extra = (2.0 * vector_ops * n / iter_flops) if include_tmr else 0.0
        detect = (7.0 * n) / iter_flops + tmr_extra
        correct = (12.0 * n) / iter_flops + tmr_extra
        # Checkpoint writes the full protected state (matrix + 4 vectors);
        # reading it back (recovery) costs the same in this model.
        cp = (a.memory_words + 4.0 * n) / iter_flops
        return cls(
            t_iter=1.0,
            t_cp=cp,
            t_rec=cp,
            t_verif_online=online,
            t_verif_detect=detect,
            t_verif_correct=correct,
        )


@dataclass(frozen=True)
class SchemeConfig:
    """Full configuration of one fault-tolerant CG run.

    Attributes
    ----------
    scheme:
        Which protection scheme to run.
    checkpoint_interval:
        The ``s`` of the performance model: verified chunks per frame.
    verification_interval:
        The ``d`` of ONLINE-DETECTION: iterations per chunk.  Must be 1
        for the ABFT schemes (they verify every iteration).
    costs:
        Normalized cost model.
    """

    scheme: Scheme
    checkpoint_interval: int = 10
    verification_interval: int = 1
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError(f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}")
        if self.verification_interval < 1:
            raise ValueError(
                f"verification_interval must be >= 1, got {self.verification_interval}"
            )
        if self.scheme.uses_abft and self.verification_interval != 1:
            raise ValueError("ABFT schemes verify every iteration (d must be 1)")

    def with_intervals(self, s: int | None = None, d: int | None = None) -> "SchemeConfig":
        """Copy with new intervals (model-driven tuning)."""
        return replace(
            self,
            checkpoint_interval=self.checkpoint_interval if s is None else int(s),
            verification_interval=self.verification_interval if d is None else int(d),
        )

    @property
    def chunk_time(self) -> float:
        """T — duration of one chunk (d iterations) in normalized units."""
        return self.verification_interval * self.costs.t_iter

    @property
    def verification_cost(self) -> float:
        """Tverif for this scheme."""
        return self.costs.verification_cost(self.scheme)
