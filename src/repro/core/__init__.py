"""Iterative solvers and their fault-tolerant variants.

- :mod:`repro.core.cg` — the textbook Conjugate Gradient method
  (paper Algorithm 1);
- :mod:`repro.core.pcg` — preconditioned CG (the Section-6 extension);
- :mod:`repro.core.krylov` — BiCGstab / BiCG / CGNE, the Section-3
  solver list, with injectable (protectable) products;
- :mod:`repro.core.stability` — Chen's verification tests
  (orthogonality + recomputed residual) used by ONLINE-DETECTION;
- :mod:`repro.core.methods` — scheme descriptors and cost models for
  the three protection schemes;
- :mod:`repro.core.ft_cg` — the fault-tolerant CG driver combining
  verification, forward recovery (ABFT correction) and backward
  recovery (checkpoint rollback);
- :mod:`repro.core.ft_krylov` — the same combination for BiCGstab.
"""

from repro.core.cg import cg, CGResult
from repro.core.pcg import pcg, jacobi_preconditioner, ssor_preconditioner
from repro.core.krylov import bicgstab, bicg, cgne
from repro.core.stability import orthogonality_check, residual_check, chen_verify
from repro.core.methods import Scheme, CostModel, SchemeConfig
from repro.core.ft_cg import run_ft_cg, FTCGResult, RecoveryCounters, TimeBreakdown
from repro.core.ft_krylov import run_ft_bicgstab

__all__ = [
    "cg",
    "CGResult",
    "pcg",
    "jacobi_preconditioner",
    "ssor_preconditioner",
    "bicgstab",
    "bicg",
    "cgne",
    "orthogonality_check",
    "residual_check",
    "chen_verify",
    "Scheme",
    "CostModel",
    "SchemeConfig",
    "run_ft_cg",
    "run_ft_bicgstab",
    "FTCGResult",
    "RecoveryCounters",
    "TimeBreakdown",
]
