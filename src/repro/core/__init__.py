"""Iterative solvers and their fault-tolerant variants.

- :mod:`repro.core.cg` — the textbook Conjugate Gradient method
  (paper Algorithm 1);
- :mod:`repro.core.pcg` — preconditioned CG (the Section-6 extension);
- :mod:`repro.core.krylov` — BiCGstab / BiCG / CGNE, the Section-3
  solver list, with injectable (protectable) products;
- :mod:`repro.core.stability` — Chen's verification tests
  (orthogonality + recomputed residual) used by ONLINE-DETECTION;
- :mod:`repro.core.methods` — scheme/method descriptors and cost
  models for the three protection schemes;
- :mod:`repro.core.ft_cg` — fault-tolerant CG (a thin wrapper over the
  resilience engine's CG plugin);
- :mod:`repro.core.ft_krylov` — the same for BiCGstab.

The protection machinery itself (protected products, TMR voting,
checkpoint/rollback orchestration, accounting) lives in
:mod:`repro.resilience`; new solvers are added there as recurrence
plugins — see :func:`repro.resilience.run_ft_method`.
"""

from repro.core.cg import cg, CGResult
from repro.core.pcg import pcg, jacobi_preconditioner, ssor_preconditioner
from repro.core.krylov import bicgstab, bicg, cgne
from repro.core.stability import orthogonality_check, residual_check, chen_verify
from repro.core.methods import Scheme, Method, CostModel, SchemeConfig
from repro.core.ft_cg import run_ft_cg, FTCGResult, RecoveryCounters, TimeBreakdown
from repro.core.ft_krylov import run_ft_bicgstab
from repro.resilience.registry import run_ft_method, run_ft_pcg

__all__ = [
    "cg",
    "CGResult",
    "pcg",
    "jacobi_preconditioner",
    "ssor_preconditioner",
    "bicgstab",
    "bicg",
    "cgne",
    "orthogonality_check",
    "residual_check",
    "chen_verify",
    "Scheme",
    "Method",
    "CostModel",
    "SchemeConfig",
    "run_ft_cg",
    "run_ft_bicgstab",
    "run_ft_pcg",
    "run_ft_method",
    "FTCGResult",
    "RecoveryCounters",
    "TimeBreakdown",
]
