"""Fault-tolerant Conjugate Gradient: the three schemes of the paper.

One driver, :func:`run_ft_cg`, executes CG under silent-error injection
with the protection scheme selected by a :class:`SchemeConfig`:

ONLINE-DETECTION (Chen [9], extended to checkpoint the matrix)
    Iterations run unprotected; every ``d`` iterations Chen's stability
    tests (orthogonality + recomputed residual) run, and every ``s``
    verified chunks a checkpoint is taken.  Any detection rolls back to
    the last checkpoint.

ABFT-DETECTION
    Every SpMxV is protected with one checksum row (single-error
    detection, Theorem 1 with the shifted checksum); vector kernels are
    TMR-protected.  Any detection rolls back.

ABFT-CORRECTION
    Every SpMxV is protected with two checksum rows (double detection /
    single correction, Algorithm 2); single errors are repaired in
    place — *forward recovery*, no rollback, no re-execution — and only
    uncorrectable (multiple) errors roll back.

Since the resilience-engine refactor this module is a thin wrapper:
the protection machinery (strike routing, protected products, TMR
voting, checkpoint/rollback orchestration, accounting) lives in
:mod:`repro.resilience.engine` and the CG recurrence in
:class:`repro.resilience.cg.CGPlugin`.  The wrapper reproduces the
original monolithic driver bit-for-bit for fixed seeds
(``tests/test_resilience_golden.py``).

Fault semantics follow Section 5.1: per iteration, a Poisson(α) number
of bit flips strike uniformly over the protected memory (matrix arrays
+ the vectors x, r, p, q), routed to the operation window where the
struck word is live — see :mod:`repro.resilience.cg` for the window
map.  Time is accounted in normalized units (``Titer = 1``) using the
:class:`~repro.core.methods.CostModel`; wall-clock time is also
reported but is not the quantity the paper's figures plot.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods import SchemeConfig
from repro.resilience.accounting import RecoveryCounters, SolveResult, TimeBreakdown
from repro.resilience.cg import CGPlugin
from repro.resilience.engine import run_protected
from repro.sparse.csr import CSRMatrix
from repro.util.log import EventLog

__all__ = ["RecoveryCounters", "TimeBreakdown", "FTCGResult", "run_ft_cg"]

#: Backward-compatible alias: every method on the engine returns the
#: same result shape, so the CG-specific name now points at
#: :class:`repro.resilience.accounting.SolveResult`.
FTCGResult = SolveResult


def run_ft_cg(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float = 0.0,
    x0: np.ndarray | None = None,
    eps: float = 1e-8,
    maxiter: int | None = None,
    rng: "int | np.random.Generator | None" = None,
    max_time_units: float | None = None,
    event_log: EventLog | None = None,
    final_check: bool = True,
    workspace: "object | None" = None,
    tracer: "object | None" = None,
) -> FTCGResult:
    """Run fault-tolerant CG under silent-error injection.

    Parameters
    ----------
    a:
        SPD matrix (never mutated; the solver works on a live copy).
    b:
        Right-hand side.
    config:
        Scheme, intervals and cost model.
    alpha:
        Fault-rate constant: strikes per iteration ~ Poisson(α)
        (``λ = α/M`` per word).  Zero disables injection.
    eps, maxiter, x0:
        As in :func:`repro.core.cg.cg`; ``maxiter`` caps *executed*
        iterations and defaults to ``20 n`` (faulty runs need headroom).
    rng:
        Seed or generator for the fault process.
    max_time_units:
        Optional bail-out on simulated time (pathological runs).
    event_log:
        Optional :class:`~repro.util.log.EventLog` receiving recovery
        events.
    final_check:
        Reliably re-verify the residual on apparent convergence and
        keep iterating if it is bogus (recommended; disable only to
        study undetected-error impact).
    workspace:
        Optional :class:`repro.perf.SolveWorkspace` for the zero-copy
        hot path (bit-identical; see
        :func:`repro.resilience.engine.run_protected`).
    tracer:
        Optional :class:`repro.obs.Tracer` receiving the run's event
        stream; ``None``/:class:`repro.obs.NullTracer` trace nothing
        and cannot perturb the trajectory.

    Returns
    -------
    FTCGResult
    """
    return run_protected(
        CGPlugin(),
        a,
        b,
        config,
        alpha=alpha,
        x0=x0,
        eps=eps,
        maxiter=maxiter,
        rng=rng,
        max_time_units=max_time_units,
        event_log=event_log,
        final_check=final_check,
        workspace=workspace,
        tracer=tracer,
    )
