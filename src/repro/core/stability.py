"""Chen's stability verification for CG (ONLINE-DETECTION).

Section 3.1: Chen's tests check, at each verification point,

1. the **orthogonality** of the current search direction ``p_{i+1}``
   and the last ``q = A p_i``: in exact CG these are conjugate, so
   ``p_{i+1}ᵀq / (‖p_{i+1}‖‖q‖)`` must be (near) zero — a cheap test
   (two inner products);
2. the **recomputed residual**: ``b − A x_i`` must agree with the
   maintained recurrence residual ``r_i``.  This costs an extra SpMxV
   and dominates the verification time.

Both tolerances default to values that, like the ABFT Theorem-2 bound,
avoid false positives on fault-free runs (CG loses conjugacy gradually
through rounding, so the orthogonality threshold cannot be too tight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv

__all__ = ["VerificationReport", "orthogonality_check", "residual_check", "chen_verify"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one ONLINE-DETECTION verification."""

    passed: bool
    orthogonality: float  #: |pᵀq| / (‖p‖‖q‖), NaN if not evaluated
    residual_gap: float  #: ‖(b − A x) − r‖ / ‖b‖, NaN if not evaluated


def orthogonality_check(
    p_next: np.ndarray, q: np.ndarray, *, tol: float = 1e-8
) -> tuple[bool, float]:
    """Chen's conjugacy test: is ``p_{i+1}`` numerically orthogonal to ``q``?

    Returns ``(passed, score)`` with ``score = |pᵀq|/(‖p‖‖q‖)``.
    A zero vector (fault can zero out p) scores 0 but is treated as a
    failure because CG cannot continue with a null direction.
    """
    np_norm = float(np.linalg.norm(p_next))
    nq_norm = float(np.linalg.norm(q))
    if np_norm == 0.0 or nq_norm == 0.0 or not np.isfinite(np_norm * nq_norm):
        return False, float("inf")
    score = abs(float(p_next @ q)) / (np_norm * nq_norm)
    return bool(score <= tol), score


def residual_check(
    a: CSRMatrix,
    b: np.ndarray,
    x: np.ndarray,
    r: np.ndarray,
    *,
    tol: float = 1e-8,
    backend: "object | None" = None,
) -> tuple[bool, float]:
    """Recompute ``b − A x`` and compare against the maintained ``r``.

    The gap is normalized by ``‖b‖`` (or 1 if ``b = 0``).  Costs one
    SpMxV — the dominant part of ONLINE-DETECTION's ``Tverif`` —
    issued on the run's kernel ``backend`` so the recomputed and
    maintained residuals come from the same summation order.
    """
    true_r = b - spmv(a, x, backend=backend)
    scale = float(np.linalg.norm(b)) or 1.0
    gap = float(np.linalg.norm(true_r - r)) / scale
    if not np.isfinite(gap):
        return False, float("inf")
    return bool(gap <= tol), gap


def chen_verify(
    a: CSRMatrix,
    b: np.ndarray,
    x: np.ndarray,
    r: np.ndarray,
    p_next: np.ndarray,
    q: np.ndarray,
    *,
    orth_tol: float = 1e-8,
    res_tol: float = 1e-8,
    check_orthogonality: bool = True,
    backend: "object | None" = None,
) -> VerificationReport:
    """Full ONLINE-DETECTION verification (both tests).

    The residual test is evaluated even when the orthogonality test
    already failed, so the report always carries both diagnostics.

    ``check_orthogonality=False`` skips the conjugacy test — used at
    (apparent) convergence, where ``p`` and ``q`` vanish and the
    conjugacy ratio degenerates to 0/0; the residual test alone decides
    there.
    """
    if check_orthogonality:
        orth_ok, orth_score = orthogonality_check(p_next, q, tol=orth_tol)
    else:
        orth_ok, orth_score = True, float("nan")
    res_ok, res_gap = residual_check(a, b, x, r, tol=res_tol, backend=backend)
    return VerificationReport(
        passed=orth_ok and res_ok,
        orthogonality=orth_score,
        residual_gap=res_gap,
    )
