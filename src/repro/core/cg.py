"""The Conjugate Gradient method (paper Algorithm 1).

The unprotected baseline every fault-tolerant variant builds on.  The
stopping criterion follows Algorithm 1:

    while ‖r_i‖ > ε (‖A‖·‖r₀‖ + ‖b‖)

with ``‖A‖`` taken as the 1-norm (computable exactly for CSR).  A
``maxiter`` cap guards indefinite iteration on ill-conditioned systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.norms import norm1
from repro.util.validate import check_positive, check_vector

__all__ = ["CGResult", "cg", "cg_tolerance_threshold"]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        The computed solution.
    iterations:
        Iterations performed.
    converged:
        Whether the stopping criterion was met before ``maxiter``.
    residual_norm:
        Final ``‖r‖`` (the recurrence residual, not recomputed).
    threshold:
        The stopping threshold ``ε(‖A‖‖r₀‖ + ‖b‖)`` that was used.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    threshold: float


def cg_tolerance_threshold(
    a: CSRMatrix,
    b: np.ndarray,
    r0: np.ndarray,
    eps: float,
    *,
    norm1_a: "float | None" = None,
) -> float:
    """Algorithm 1's stopping threshold ``ε (‖A‖·‖r₀‖ + ‖b‖)``.

    ``norm1_a`` lets a caller supply a cached ``‖A‖₁`` (the solve
    workspace computes it once per matrix) instead of the O(nnz)
    evaluation; the formula stays in one place either way.
    """
    if norm1_a is None:
        norm1_a = norm1(a)
    return eps * (norm1_a * float(np.linalg.norm(r0)) + float(np.linalg.norm(b)))


def cg(
    a: CSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-8,
    maxiter: int | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
) -> CGResult:
    """Solve ``A x = b`` for SPD ``A`` by plain Conjugate Gradient.

    Parameters
    ----------
    a:
        SPD matrix in CSR form.
    b:
        Right-hand side.
    x0:
        Initial guess (zero vector when None).
    eps:
        The ε of Algorithm 1's stopping criterion.
    maxiter:
        Iteration cap; defaults to ``10 n``.
    callback:
        Called as ``callback(i, x_i, ‖r_i‖)`` after each iteration.
    """
    check_positive("eps", eps)
    n = a.nrows
    b = check_vector("b", np.asarray(b, dtype=np.float64), n)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    maxiter = 10 * n if maxiter is None else int(maxiter)

    r = b - a.matvec(x)  # line 1
    p = r.copy()  # line 2
    rr = float(r @ r)
    threshold = cg_tolerance_threshold(a, b, r, eps)

    i = 0
    while np.sqrt(rr) > threshold and i < maxiter:  # line 4
        q = a.matvec(p)  # line 5
        pq = float(p @ q)
        if pq <= 0:
            # Not SPD (or fatally corrupted): bail out rather than divide
            # by a non-positive curvature.
            break
        alpha = rr / pq  # line 6
        x += alpha * p  # line 7
        r -= alpha * q  # line 8
        rr_new = float(r @ r)
        beta = rr_new / rr  # line 9
        p *= beta  # line 10 (in place: p = r + β p)
        p += r
        rr = rr_new
        i += 1
        if callback is not None:
            callback(i, x, float(np.sqrt(rr)))

    return CGResult(
        x=x,
        iterations=i,
        converged=bool(np.sqrt(rr) <= threshold),
        residual_norm=float(np.sqrt(rr)),
        threshold=threshold,
    )
