"""Fault-tolerant BiCGstab: the paper's scheme beyond CG.

Section 3 claims the combination of ABFT-protected products, TMR vector
kernels and verified checkpointing carries over to "CGNE, BiCG,
BiCGstab".  This driver makes that concrete for BiCGstab, whose two
products per iteration (``A·p`` and ``A·s``) are both routed through
the protected SpMxV:

- every iteration both products are ABFT-verified (detection or
  detect-2/correct-1, per the scheme);
- single errors in the matrix arrays, the product inputs or outputs are
  forward-corrected (ABFT-CORRECTION) — no rollback;
- detections / uncorrectable strikes roll back to the last verified
  checkpoint, which snapshots all five iteration vectors, the scalars
  of the recurrence, and the matrix;
- strikes on vectors outside the product windows are TMR-handled as in
  :mod:`repro.core.ft_cg` (single strike per kernel masked, double
  strike defeats the vote).

Time accounting: one BiCGstab iteration is normalized to 1 (it costs
roughly two CG iterations in flops; the cost model's ``t_iter`` is the
unit, so compare within the method, not across methods).
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv
from repro.abft.checksums import compute_checksums
from repro.abft.spmv import protected_spmv
from repro.checkpoint.policy import PeriodicCheckpointPolicy
from repro.checkpoint.store import CheckpointStore
from repro.core.cg import cg_tolerance_threshold
from repro.core.ft_cg import FTCGResult, RecoveryCounters, TimeBreakdown
from repro.core.methods import Scheme, SchemeConfig
from repro.faults.bitflip import flip_bits_array
from repro.faults.injector import FaultInjector, FaultModel
from repro.util.log import EventLog
from repro.util.rng import as_generator

__all__ = ["run_ft_bicgstab"]

#: Strike routing: matrix arrays + each product's input vector land in
#: that product's protected window; everything else is TMR territory.
_WINDOW1 = frozenset({"val", "colid", "rowidx", "p"})
_WINDOW2 = frozenset({"s"})


def run_ft_bicgstab(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float = 0.0,
    eps: float = 1e-8,
    maxiter: int | None = None,
    rng: "int | np.random.Generator | None" = None,
    max_time_units: float | None = None,
    event_log: EventLog | None = None,
) -> FTCGResult:
    """Run fault-tolerant BiCGstab under silent-error injection.

    Parameters mirror :func:`repro.core.ft_cg.run_ft_cg`; the scheme
    must be one of the ABFT schemes (ONLINE-DETECTION's stability tests
    are CG-specific — Chen's conjugacy argument does not port).
    """
    if not config.scheme.uses_abft:
        raise ValueError("run_ft_bicgstab supports the ABFT schemes only")
    wall_start = _time.perf_counter()
    rng = as_generator(rng)
    log = event_log if event_log is not None else EventLog()
    costs = config.costs
    n = a.nrows
    maxiter = 20 * n if maxiter is None else int(maxiter)
    b = np.asarray(b, dtype=np.float64)

    live = a.copy()
    x = np.zeros(n)
    r = b - spmv(live, x)
    r_hat = r.copy()
    p = np.zeros(n)
    v = np.zeros(n)
    s = np.zeros(n)
    scal = {"rho": 1.0, "alpha": 1.0, "omega": 1.0, "iteration": 0}
    threshold = cg_tolerance_threshold(a, b, r, eps)
    checksums = compute_checksums(a, nchecks=2 if config.scheme.corrects else 1)

    injector: FaultInjector | None = None
    if alpha > 0:
        words = live.memory_words + 6 * n
        injector = FaultInjector(FaultModel(alpha=alpha, memory_words=words), rng)
        injector.register("val", live.val)
        injector.register("colid", live.colid)
        injector.register("rowidx", live.rowidx)
        for name, vec in (("x", x), ("r", r), ("r_hat", r_hat), ("p", p), ("v", v), ("s", s)):
            injector.register(name, vec)

    store = CheckpointStore(keep=1)
    policy = PeriodicCheckpointPolicy(config.checkpoint_interval)
    counters = RecoveryCounters()
    breakdown = TimeBreakdown()

    def snapshot() -> None:
        store.save(
            scal["iteration"],
            vectors={"x": x, "r": r, "r_hat": r_hat, "p": p, "v": v, "s": s},
            matrix=live,
            scalars=dict(scal),
        )

    def restore() -> None:
        cp = store.restore()
        for name, vec in (("x", x), ("r", r), ("r_hat", r_hat), ("p", p), ("v", v), ("s", s)):
            vec[:] = cp.vectors[name]
        live.val[:] = cp.matrix.val
        live.colid[:] = cp.matrix.colid
        live.rowidx[:] = cp.matrix.rowidx
        scal.update(cp.scalars)
        scal["iteration"] = int(cp.scalars["iteration"])

    snapshot()
    time_units = 0.0
    uncommitted = 0.0
    executed = 0
    stuck = 0
    stuck_threshold = max(8, 2 * config.checkpoint_interval)

    def rollback(reason: str) -> None:
        nonlocal time_units, uncommitted, stuck
        counters.rollbacks += 1
        stuck += 1
        time_units += costs.t_rec
        breakdown.recovery += costs.t_rec
        breakdown.wasted_work += uncommitted
        uncommitted = 0.0
        if stuck > stuck_threshold:
            # Re-read initial data: heal a tainted checkpoint.
            live.val[:] = a.val
            live.colid[:] = a.colid
            live.rowidx[:] = a.rowidx
            cp = store.restore()
            x[:] = cp.vectors["x"]
            r[:] = b - spmv(a, x)
            r_hat[:] = r
            p[:] = 0.0
            v[:] = 0.0
            s[:] = 0.0
            scal.update({"rho": 1.0, "alpha": 1.0, "omega": 1.0})
            snapshot()
            stuck = 0
            log.emit("refresh-rollback", scal["iteration"])
            return
        restore()
        policy.rolled_back()
        log.emit("rollback", scal["iteration"], reason=reason)

    def protected_product(x_in: np.ndarray, pre, post) -> "np.ndarray | None":
        """One ABFT product with window-routed strikes; None on failure."""

        def hook(stage, _a, xx, y) -> None:
            if injector is None:
                return
            if stage == "pre":
                for st in pre:
                    injector.apply_strike(scal["iteration"], st)
            elif stage == "post" and y is not None:
                for name, posn, bit in post:
                    flip_bits_array(y, np.array([posn]), np.array([bit]))

        res = protected_spmv(
            live, x_in, checksums, correct=config.scheme.corrects, fault_hook=hook
        )
        if res.status.value == "corrected" and res.correction is not None:
            counters.record_correction(res.correction.kind)
            log.emit("correction", scal["iteration"], what=res.correction.kind)
        if not res.trusted:
            counters.detections += 1
            return None
        return res.y

    rnorm = float(np.linalg.norm(r))
    converged = rnorm <= threshold
    while not converged and executed < maxiter:
        if max_time_units is not None and time_units > max_time_units:
            break
        strikes = injector.sample_strikes() if injector is not None else []
        counters.faults_injected += len(strikes)
        executed += 1
        time_units += costs.t_iter + config.verification_cost
        uncommitted += costs.t_iter
        breakdown.verification += config.verification_cost
        counters.verifications += 1

        pre1 = [st for st in strikes if st[0] in _WINDOW1]
        post1 = [st for st in strikes if st[0] == "v"]
        pre2 = [st for st in strikes if st[0] in _WINDOW2]
        tmr_phase = [st for st in strikes if st[0] in ("x", "r", "r_hat")]

        # TMR-protected vector phase (same semantics as FT-CG).
        failed_tmr = False
        if tmr_phase and injector is not None:
            by_target: dict[str, list] = {}
            for st in tmr_phase:
                by_target.setdefault(st[0], []).append(st)
            for target, hits in by_target.items():
                if len(hits) >= 2:
                    for st in hits:
                        injector.apply_strike(scal["iteration"], st)
                    counters.tmr_detections += 1
                    failed_tmr = True
                else:
                    rec = injector.apply_strike(scal["iteration"], hits[0])
                    injector.revert(rec)
                    counters.tmr_corrections += 1
        if failed_tmr:
            rollback("tmr")
            continue

        rho_new = float(r_hat @ r)
        if rho_new == 0.0 or scal["omega"] == 0.0:
            rollback("breakdown")
            continue
        beta = (rho_new / scal["rho"]) * (scal["alpha"] / scal["omega"])
        p[:] = r + beta * (p - scal["omega"] * v)

        y1 = protected_product(p, pre1, post1)
        if y1 is None:
            rollback("abft")
            continue
        v[:] = y1
        denom = float(r_hat @ v)
        if denom == 0.0 or not np.isfinite(denom):
            rollback("breakdown")
            continue
        alpha_k = rho_new / denom
        s[:] = r - alpha_k * v

        y2 = protected_product(s, pre2, [])
        if y2 is None:
            rollback("abft")
            continue
        t = y2
        tt = float(t @ t)
        if tt == 0.0 or not np.isfinite(tt):
            rollback("breakdown")
            continue
        omega_k = float(t @ s) / tt
        x += alpha_k * p + omega_k * s
        r[:] = s - omega_k * t
        scal.update({"rho": rho_new, "alpha": alpha_k, "omega": omega_k})
        scal["iteration"] += 1

        rnorm = float(np.linalg.norm(r))
        converged = bool(np.isfinite(rnorm) and rnorm <= threshold)
        if converged:
            true_norm = float(np.linalg.norm(b - spmv(a, x)))
            if true_norm > threshold:
                counters.final_check_failures += 1
                rollback("final-check")
                converged = False
                continue
        else:
            if policy.chunk_verified():
                snapshot()
                counters.checkpoints += 1
                stuck = 0
                time_units += costs.t_cp
                breakdown.checkpoint += costs.t_cp
                breakdown.useful_work += uncommitted
                uncommitted = 0.0
                log.emit("checkpoint", scal["iteration"])

    breakdown.useful_work += uncommitted
    true_residual = float(np.linalg.norm(b - spmv(a, x)))
    return FTCGResult(
        x=x.copy(),
        converged=bool(true_residual <= threshold),
        iterations=int(scal["iteration"]),
        iterations_executed=executed,
        time_units=time_units,
        wall_seconds=_time.perf_counter() - wall_start,
        residual_norm=true_residual,
        threshold=threshold,
        counters=counters,
        breakdown=breakdown,
        config=config,
    )
