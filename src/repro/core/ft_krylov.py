"""Fault-tolerant BiCGstab: the paper's scheme beyond CG.

Section 3 claims the combination of ABFT-protected products, TMR vector
kernels and verified checkpointing carries over to "CGNE, BiCG,
BiCGstab".  :func:`run_ft_bicgstab` makes that concrete for BiCGstab;
since the resilience-engine refactor it is a thin wrapper over
:class:`repro.resilience.bicgstab.BiCGstabPlugin` on
:mod:`repro.resilience.engine`, reproducing the original monolithic
driver bit-for-bit for fixed seeds
(``tests/test_resilience_golden.py``).

Both products per iteration (``A·p`` and ``A·s``) run through the
protected SpMxV; single errors are forward-corrected under
ABFT-CORRECTION, detections roll back to the last verified checkpoint,
and strikes on vectors outside the product windows are TMR-handled.
Time accounting: one BiCGstab iteration is normalized to 1 (it costs
roughly two CG iterations in flops; compare within the method, not
across methods).
"""

from __future__ import annotations

import numpy as np

from repro.core.ft_cg import FTCGResult
from repro.core.methods import SchemeConfig
from repro.resilience.bicgstab import BiCGstabPlugin
from repro.resilience.engine import run_protected
from repro.sparse.csr import CSRMatrix
from repro.util.log import EventLog

__all__ = ["run_ft_bicgstab"]


def run_ft_bicgstab(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float = 0.0,
    eps: float = 1e-8,
    maxiter: int | None = None,
    rng: "int | np.random.Generator | None" = None,
    max_time_units: float | None = None,
    event_log: EventLog | None = None,
    workspace: "object | None" = None,
    tracer: "object | None" = None,
) -> FTCGResult:
    """Run fault-tolerant BiCGstab under silent-error injection.

    Parameters mirror :func:`repro.core.ft_cg.run_ft_cg`; the scheme
    must be one of the ABFT schemes (ONLINE-DETECTION's stability tests
    are CG-specific — Chen's conjugacy argument does not port).
    """
    return run_protected(
        BiCGstabPlugin(),
        a,
        b,
        config,
        alpha=alpha,
        eps=eps,
        maxiter=maxiter,
        workspace=workspace,
        rng=rng,
        max_time_units=max_time_units,
        event_log=event_log,
        tracer=tracer,
    )
