"""Non-stationary Krylov solvers beyond CG.

Section 3 of the paper: "the techniques that we describe are applicable
to any iterative solver that use sparse matrix vector multiplies and
vector operations.  This list includes many of the non-stationary
iterative solvers such as CGNE, BiCG, BiCGstab where sparse matrix
transpose vector multiply operations also take place."

These implementations take the products as injectable callables
(``matvec`` for ``A·v``, ``rmatvec`` for ``Aᵀ·v``) so the ABFT-protected
product — and, for the transpose, a protected product with the
transposed matrix's own checksums (see
:class:`repro.abft.operator.ProtectedOperator`) — slots straight in.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.cg import CGResult, cg_tolerance_threshold
from repro.util.validate import check_positive, check_vector

__all__ = ["bicgstab", "bicg", "cgne"]

MatVec = Callable[[np.ndarray], np.ndarray]


def _setup(a: CSRMatrix, b, x0, eps, maxiter, matvec):
    check_positive("eps", eps)
    n = a.nrows
    b = check_vector("b", np.asarray(b, dtype=np.float64), n)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    maxiter = 10 * n if maxiter is None else int(maxiter)
    apply_a = matvec if matvec is not None else a.matvec
    r = b - apply_a(x)
    threshold = cg_tolerance_threshold(a, b, r, eps)
    return b, x, maxiter, apply_a, r, threshold


def bicgstab(
    a: CSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-8,
    maxiter: int | None = None,
    matvec: MatVec | None = None,
) -> CGResult:
    """BiCGstab (van der Vorst; Saad Alg. 7.7) for general square ``A``.

    Two SpMxVs per iteration, no transpose product — the natural first
    target for ABFT protection after CG.
    """
    b, x, maxiter, apply_a, r, threshold = _setup(a, b, x0, eps, maxiter, matvec)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(r)
    p = np.zeros_like(r)
    rnorm = float(np.linalg.norm(r))
    i = 0
    while rnorm > threshold and i < maxiter:
        rho_new = float(r_hat @ r)
        if rho_new == 0.0 or omega == 0.0:
            break  # breakdown: restart would be needed
        beta = (rho_new / rho) * (alpha / omega)
        p = r + beta * (p - omega * v)
        v = apply_a(p)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        snorm = float(np.linalg.norm(s))
        if snorm <= threshold:
            x += alpha * p
            r = s
            rnorm = snorm
            i += 1
            break
        t = apply_a(s)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        rnorm = float(np.linalg.norm(r))
        i += 1
    return CGResult(
        x=x, iterations=i, converged=bool(rnorm <= threshold),
        residual_norm=rnorm, threshold=threshold,
    )


def bicg(
    a: CSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-8,
    maxiter: int | None = None,
    matvec: MatVec | None = None,
    rmatvec: MatVec | None = None,
) -> CGResult:
    """BiConjugate Gradient (Saad Alg. 7.3) — one ``A·v`` and one
    ``Aᵀ·v`` per iteration, the transpose-product case the paper calls
    out for its ABFT scheme."""
    b, x, maxiter, apply_a, r, threshold = _setup(a, b, x0, eps, maxiter, matvec)
    at = None
    if rmatvec is None:
        at = a.transpose()
        rmatvec = at.matvec
    r_star = r.copy()
    p = r.copy()
    p_star = r_star.copy()
    rho = float(r_star @ r)
    rnorm = float(np.linalg.norm(r))
    i = 0
    while rnorm > threshold and i < maxiter:
        if rho == 0.0:
            break
        q = apply_a(p)
        q_star = rmatvec(p_star)
        denom = float(p_star @ q)
        if denom == 0.0:
            break
        alpha = rho / denom
        x += alpha * p
        r -= alpha * q
        r_star -= alpha * q_star
        rho_new = float(r_star @ r)
        beta = rho_new / rho
        p = r + beta * p
        p_star = r_star + beta * p_star
        rho = rho_new
        rnorm = float(np.linalg.norm(r))
        i += 1
    return CGResult(
        x=x, iterations=i, converged=bool(rnorm <= threshold),
        residual_norm=rnorm, threshold=threshold,
    )


def cgne(
    a: CSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-8,
    maxiter: int | None = None,
    matvec: MatVec | None = None,
    rmatvec: MatVec | None = None,
) -> CGResult:
    """CG on the Normal Equations (CGNE / Craig's method, Saad §8.3):
    applies CG to ``A Aᵀ y = b``, ``x = Aᵀ y`` — needs both products
    every iteration and works for any nonsingular ``A``."""
    b, x, maxiter, apply_a, r, threshold = _setup(a, b, x0, eps, maxiter, matvec)
    at = None
    if rmatvec is None:
        at = a.transpose()
        rmatvec = at.matvec
    p = rmatvec(r)
    rr = float(r @ r)
    rnorm = float(np.sqrt(rr))
    i = 0
    while rnorm > threshold and i < maxiter:
        pp = float(p @ p)
        if pp == 0.0:
            break
        alpha = rr / pp
        x += alpha * p
        r -= alpha * apply_a(p)
        rr_new = float(r @ r)
        beta = rr_new / rr
        p *= beta
        p += rmatvec(r)
        rr = rr_new
        rnorm = float(np.sqrt(rr))
        i += 1
    return CGResult(
        x=x, iterations=i, converged=bool(rnorm <= threshold),
        residual_norm=rnorm, threshold=threshold,
    )
