"""Preconditioned Conjugate Gradient (the paper's Section-6 extension).

The paper singles out diagonal (Jacobi), approximate-inverse and
triangular preconditioners as attractive because the preconditioner
application is itself an SpMxV (or triangular solve) that the same ABFT
machinery can protect.  We provide Jacobi and SSOR preconditioners; the
Jacobi one is applied as a (diagonal) SpMxV and can therefore be
wrapped with :func:`repro.abft.spmv.protected_spmv` — see
``benchmarks/bench_pcg.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.cg import CGResult, cg_tolerance_threshold
from repro.util.validate import check_positive, check_vector

__all__ = ["pcg", "jacobi_preconditioner", "ssor_preconditioner"]

#: A preconditioner is a callable applying M⁻¹ to a vector.
Preconditioner = Callable[[np.ndarray], np.ndarray]


def jacobi_inverse_diagonal(a: CSRMatrix) -> np.ndarray:
    """``diag(A)⁻¹`` as a raw vector; raises if the diagonal has zeros
    (the matrix would not be SPD anyway).

    The single source of the Jacobi setup: the closure form below, the
    FT-PCG plugin and the solve workspace's per-matrix cache all call
    this, so the check and the arithmetic cannot drift apart.
    """
    diag = a.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("Jacobi preconditioner requires a zero-free diagonal")
    return 1.0 / diag


def jacobi_preconditioner(a: CSRMatrix) -> Preconditioner:
    """Diagonal (Jacobi) preconditioner ``M = diag(A)``.

    Returns a callable computing ``M⁻¹ z``; raises if the diagonal has
    zeros.
    """
    inv = jacobi_inverse_diagonal(a)
    return lambda z: inv * z


def ssor_preconditioner(a: CSRMatrix, omega: float = 1.0) -> Preconditioner:
    """SSOR preconditioner built from the triangular splitting of ``A``.

    ``M = (D/ω + L) · (ω/(2−ω)) D⁻¹ · (D/ω + U)`` with ``A = L + D + U``.
    Applied via two sparse triangular solves (scipy), matching the
    triangular-preconditioner case Shantharam et al. address.
    """
    if not 0 < omega < 2:
        raise ValueError(f"omega must lie in (0, 2), got {omega}")
    import scipy.sparse as sp
    from scipy.sparse.linalg import spsolve_triangular

    s = a.to_scipy().tocsr()
    d = sp.diags(s.diagonal())
    lower = sp.tril(s, k=-1).tocsr()
    upper = sp.triu(s, k=1).tocsr()
    dw = d / omega
    lower_factor = (dw + lower).tocsr()
    upper_factor = (dw + upper).tocsr()
    scale = (2.0 - omega) / omega
    dvec = s.diagonal()

    def apply(z: np.ndarray) -> np.ndarray:
        t = spsolve_triangular(lower_factor, z, lower=True)
        t = scale * dvec * t
        return spsolve_triangular(upper_factor, t, lower=False)

    return apply


def pcg(
    a: CSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    preconditioner: Preconditioner | None = None,
    eps: float = 1e-8,
    maxiter: int | None = None,
    callback: Callable[[int, np.ndarray, float], None] | None = None,
    matvec: Callable[[np.ndarray], np.ndarray] | None = None,
) -> CGResult:
    """Preconditioned CG for SPD ``A`` (Saad, Alg. 9.1).

    Parameters
    ----------
    preconditioner:
        Callable applying ``M⁻¹``; identity when None (plain CG).
    matvec:
        Override for the ``A·p`` product — pass an ABFT-protected
        closure to run the protected variant.
    Other parameters as :func:`repro.core.cg.cg`.
    """
    check_positive("eps", eps)
    n = a.nrows
    b = check_vector("b", np.asarray(b, dtype=np.float64), n)
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    maxiter = 10 * n if maxiter is None else int(maxiter)
    apply_m = preconditioner if preconditioner is not None else (lambda z: z)
    apply_a = matvec if matvec is not None else a.matvec

    r = b - apply_a(x)
    z = apply_m(r)
    p = z.copy()
    rz = float(r @ z)
    threshold = cg_tolerance_threshold(a, b, r, eps)

    i = 0
    rnorm = float(np.linalg.norm(r))
    while rnorm > threshold and i < maxiter:
        q = apply_a(p)
        pq = float(p @ q)
        if pq <= 0:
            break
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        z = apply_m(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        p *= beta
        p += z
        rz = rz_new
        rnorm = float(np.linalg.norm(r))
        i += 1
        if callback is not None:
            callback(i, x, rnorm)

    return CGResult(
        x=x,
        iterations=i,
        converged=bool(rnorm <= threshold),
        residual_norm=rnorm,
        threshold=threshold,
    )
