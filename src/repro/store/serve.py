"""Serve mode: a warm worker fleet multiplexing campaigns over leases.

``repro serve --store sharded:dir --workers N spec.json …`` runs a
*dispatcher* (the calling process) plus ``N`` long-lived worker
processes that pull tasks from a shared concurrent store instead of
being handed fixed chunks:

- every worker sees the same pending set (tasks whose hash is not in
  the store yet) and *claims* one at a time through the store's lease
  protocol (:mod:`repro.store.protocol`) before executing it;
- while a task runs, a background heartbeat thread keeps its lease
  fresh; a worker that dies mid-task simply stops heartbeating, and
  once the lease TTL passes any other worker **steals** the task and
  reruns it;
- several dispatchers may serve different Studies against the *same*
  store concurrently — their workers interleave freely, because
  coordination lives entirely in the store.  That is how a warm fleet
  (per-process matrix / checksum caches, reusable workspaces — see
  :mod:`repro.perf`) is shared across campaigns.

Correctness never rests on the leases: they are advisory
duplicate-work suppression.  Task records are idempotent — a task's
result depends only on its content-hashed identity, so two workers
racing the same task append bit-identical records and last-wins
folding makes the race invisible.  A serve-mode run therefore
produces per-task results identical to ``--jobs 1``.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.progress import ProgressReporter
    from repro.campaign.spec import TaskSpec
    from repro.store.protocol import StoreBackend

__all__ = ["serve_campaign", "serve_worker"]

#: How long a worker sleeps when every pending task is currently
#: leased by a live peer.
_IDLE_SLEEP_S = 0.05


def _require_leases(store: "StoreBackend") -> None:
    from repro.store.protocol import LeaseUnsupported

    if not getattr(store, "supports_leases", False):
        raise LeaseUnsupported(
            f"store {getattr(store, 'url', store)!r} cannot coordinate "
            "concurrent workers; serve mode needs a sharded: or sqlite: "
            "store (or a custom backend with lease support)"
        )


def serve_campaign(
    tasks: "list[TaskSpec]",
    store: "StoreBackend | str | os.PathLike[str]",
    *,
    workers: int = 2,
    lease_ttl: float = 60.0,
    progress: "ProgressReporter | None" = None,
    reuse_workspace: bool = True,
    poll_interval: float = 0.1,
) -> "list[dict]":
    """Run ``tasks`` through a lease-coordinated worker fleet.

    The dispatcher spawns ``workers`` processes, waits for every task's
    record to appear in ``store`` (polling at ``poll_interval`` for
    progress reporting), and returns the records aligned with
    ``tasks`` — the same contract as
    :func:`repro.campaign.executor.run_campaign`, and bit-identical
    records to it.

    ``lease_ttl`` is the crash-detection horizon: a worker that stops
    heartbeating for this long loses its claims to the rest of the
    fleet.  Keep it comfortably above the longest single task; the
    heartbeat thread refreshes at ``lease_ttl / 3``.

    Tasks already present in the store are served from it without
    execution (serve mode *is* resume, like every store-backed
    campaign path).
    """
    import multiprocessing

    from repro.store import open_store

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if lease_ttl <= 0:
        raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
    store = open_store(store)
    _require_leases(store)

    tasks = list(tasks)
    done, pending = store.resume(tasks)
    if progress is not None:
        for _ in range(len(tasks) - len(pending)):
            progress.update(cached=True)
    if not pending:
        if progress is not None:
            progress.finish()
        return [done[t.task_hash()] for t in tasks]

    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(
            target=serve_worker,
            args=(store.url, pending, lease_ttl, reuse_workspace),
            name=f"repro-serve-{i}",
            daemon=True,
        )
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()

    wanted = {t.task_hash() for t in pending}
    try:
        reported = 0
        while True:
            missing = _missing_hashes(store, wanted)
            if progress is not None:
                finished = len(wanted) - len(missing)
                for _ in range(finished - reported):
                    progress.update()
                reported = finished
            if not missing:
                break
            if not any(p.is_alive() for p in procs):
                raise RuntimeError(
                    f"all serve workers exited but {len(missing)} task(s) "
                    "never produced a record; see worker stderr"
                )
            time.sleep(poll_interval)
        for proc in procs:
            proc.join()
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join()
        if progress is not None:
            progress.finish()

    done, still_pending = store.resume(tasks)
    if still_pending:  # pragma: no cover - the poll loop above waits for all
        raise RuntimeError(f"{len(still_pending)} task(s) missing after serve")
    return [done[t.task_hash()] for t in tasks]


def _missing_hashes(store: "StoreBackend", wanted: "set[str]") -> "set[str]":
    present = set()
    for rec in store.iter_records():
        h = rec.get("hash")
        if h in wanted:
            present.add(h)
    return wanted - present


def serve_worker(
    store_url: str,
    tasks: "list[TaskSpec]",
    lease_ttl: float,
    reuse_workspace: bool = True,
) -> None:
    """One fleet worker: claim → execute → append → release, until no
    task is pending.

    Module-level so it pickles under every multiprocessing start
    method.  The worker opens its own store from the URL (handles and
    connections never cross the process boundary) and identifies
    itself to the lease board as ``pid-<pid>-<nonce>``.
    """
    from repro.campaign.executor import _telemetry_state, execute_task
    from repro.store import open_store

    store = open_store(store_url)
    _require_leases(store)
    owner = f"pid-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    pending = {t.task_hash(): t for t in tasks}
    # Baseline for this worker's telemetry delta: values a forked
    # worker inherited from the dispatcher must not leak into it.
    telemetry_base = _telemetry_state()

    while pending:
        # Refresh the view of finished work (ours and every peer's).
        for h in _present_hashes(store, set(pending)):
            pending.pop(h, None)
        claimed = None
        for h, task in pending.items():
            if store.try_claim(h, owner, lease_ttl):
                claimed = (h, task)
                break
        if claimed is None:
            if pending:
                time.sleep(_IDLE_SLEEP_S)
            continue
        h, task = claimed
        try:
            # Recheck after winning the claim: a stolen task may have
            # been finished by its original owner between our scans.
            if h in _present_hashes(store, {h}):
                pending.pop(h, None)
                continue
            record = _execute_with_heartbeat(
                store, h, owner, lease_ttl, task, execute_task, reuse_workspace
            )
            store.append(record)
            pending.pop(h, None)
        finally:
            store.release(h, owner)
    _append_worker_telemetry(store, owner, telemetry_base)
    store.close()


def _present_hashes(store: "StoreBackend", wanted: "set[str]") -> "set[str]":
    return wanted - _missing_hashes(store, wanted)


def _execute_with_heartbeat(
    store, key, owner, lease_ttl, task, execute_task, reuse_workspace
):
    """Run one task while a daemon thread keeps its lease warm.

    The heartbeat is what distinguishes "slow" from "dead": a task may
    legitimately outlive the TTL, so liveness — not task duration — is
    what peers watch before stealing.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(lease_ttl / 3):
            if not store.heartbeat(key, owner, lease_ttl):
                return  # lease lost (stolen); finish anyway — idempotent

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        return execute_task(task, reuse_workspace=reuse_workspace)
    finally:
        stop.set()
        thread.join()


def _append_worker_telemetry(
    store: "StoreBackend", owner: str, base: dict
) -> None:
    """One ``kind="telemetry"`` record per worker that executed tasks,
    mirroring :func:`repro.campaign.executor.run_campaign`'s schema."""
    from repro.campaign.executor import TELEMETRY_SCHEMA, _telemetry_state
    from repro.obs.metrics import diff_snapshots

    delta = diff_snapshots(_telemetry_state(), base)
    fresh = int(delta["counters"].get("campaign.tasks", 0))
    if not fresh:
        return
    store.append(
        {
            "hash": f"telemetry:{uuid.uuid4().hex}",
            "kind": "telemetry",
            "schema": TELEMETRY_SCHEMA,
            "serve_worker": owner,
            "jobs": 1,
            "workers": 1,
            "fresh": fresh,
            "cached": 0,
            "counters": delta["counters"],
            "timers": delta["timers"],
        }
    )
