"""Serve mode: a warm worker fleet multiplexing campaigns over leases.

``repro serve --store sharded:dir --workers N spec.json …`` runs a
*dispatcher* (the calling process) plus ``N`` long-lived worker
processes that pull tasks from a shared concurrent store instead of
being handed fixed chunks:

- every worker sees the same pending set (tasks whose hash is not in
  the store yet) and *claims* one at a time through the store's lease
  protocol (:mod:`repro.store.protocol`) before executing it;
- while a task runs, a background heartbeat thread keeps its lease
  fresh; a worker that dies mid-task simply stops heartbeating, and
  once the lease TTL passes any other worker **steals** the task and
  reruns it;
- the dispatcher *supervises* the fleet: a worker that exits with a
  nonzero status (crash, OOM kill, injected chaos) is restarted — up
  to ``max_worker_restarts`` times — so a campaign outlives its
  workers, not the other way around;
- ``SIGINT``/``SIGTERM`` drain the fleet gracefully: workers finish
  their in-flight task, append their telemetry, release their leases
  and exit 0, after which the dispatcher raises
  :class:`ServeInterrupted` (the CLI maps it to exit ``128+signum``);
- several dispatchers may serve different Studies against the *same*
  store concurrently — their workers interleave freely, because
  coordination lives entirely in the store.  That is how a warm fleet
  (per-process matrix / checksum caches, reusable workspaces — see
  :mod:`repro.perf`) is shared across campaigns.

Correctness never rests on the leases: they are advisory
duplicate-work suppression.  Task records are idempotent — a task's
result depends only on its content-hashed identity, so two workers
racing the same task append bit-identical records and last-wins
folding makes the race invisible.  A serve-mode run therefore
produces per-task results identical to ``--jobs 1``, even under
injected faults (``docs/DESIGN.md`` §10).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.progress import ProgressReporter
    from repro.campaign.spec import TaskSpec
    from repro.chaos import ChaosPolicy, RetryPolicy
    from repro.store.protocol import StoreBackend

__all__ = ["ServeInterrupted", "serve_campaign", "serve_worker"]

#: How long a worker sleeps when every pending task is currently
#: leased by a live peer.
_IDLE_SLEEP_S = 0.05

#: How long the dispatcher waits for a draining worker to finish its
#: in-flight task before terminating it.
_DRAIN_JOIN_S = 30.0


class ServeInterrupted(RuntimeError):
    """The dispatcher was stopped by a signal after draining its fleet.

    Carries the ``signum`` so callers can re-exit conventionally
    (``128 + signum``, which the CLI does).
    """

    def __init__(self, signum: int) -> None:
        self.signum = int(signum)
        super().__init__(
            f"serve dispatcher interrupted by signal {self.signum}; "
            "workers drained"
        )


def _require_leases(store: "StoreBackend") -> None:
    from repro.store.protocol import LeaseUnsupported

    if not getattr(store, "supports_leases", False):
        raise LeaseUnsupported(
            f"store {getattr(store, 'url', store)!r} cannot coordinate "
            "concurrent workers; serve mode needs a sharded: or sqlite: "
            "store (or a custom backend with lease support)"
        )


def serve_campaign(
    tasks: "list[TaskSpec]",
    store: "StoreBackend | str | os.PathLike[str]",
    *,
    workers: int = 2,
    lease_ttl: float = 60.0,
    progress: "ProgressReporter | None" = None,
    reuse_workspace: bool = True,
    poll_interval: float = 0.1,
    task_timeout: "float | None" = None,
    retries: int = 0,
    chaos: "ChaosPolicy | str | None" = None,
    max_worker_restarts: "int | None" = None,
    trace_dir: "str | os.PathLike[str] | None" = None,
) -> "list[dict]":
    """Run ``tasks`` through a lease-coordinated worker fleet.

    The dispatcher spawns ``workers`` processes, waits for every task's
    record to appear in ``store`` (polling at ``poll_interval`` for
    progress reporting), and returns the records aligned with
    ``tasks`` — the same contract as
    :func:`repro.campaign.executor.run_campaign`, and bit-identical
    records to it.

    ``lease_ttl`` is the crash-detection horizon: a worker that stops
    heartbeating for this long loses its claims to the rest of the
    fleet.  Keep it comfortably above the longest single task; the
    heartbeat thread refreshes at ``lease_ttl / 3``.

    Hardening knobs (all off by default, ``docs/DESIGN.md`` §10):
    ``task_timeout`` / ``retries`` give every worker a guarded
    execution path (deadline → retry with backoff → quarantine record);
    ``chaos`` injects deterministic faults (:mod:`repro.chaos`) into
    the workers — never the dispatcher; ``max_worker_restarts`` caps
    fleet supervision (``None`` → ``4 * workers``).  Quarantine
    records among the results are counted into the
    ``campaign.quarantined`` metric.

    Tasks already present in the store are served from it without
    execution (serve mode *is* resume, like every store-backed
    campaign path).
    """
    import multiprocessing

    from repro.campaign.executor import _worker_tracer
    from repro.chaos import resolve_chaos, resolve_retry
    from repro.obs.metrics import METRICS
    from repro.store import open_store

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if lease_ttl <= 0:
        raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
    store = open_store(store)
    _require_leases(store)
    retry = resolve_retry(retries=retries, task_timeout=task_timeout)
    chaos = resolve_chaos(chaos)
    restart_budget = (
        4 * workers if max_worker_restarts is None else int(max_worker_restarts)
    )

    tasks = list(tasks)
    done, pending = store.resume(tasks)
    if progress is not None:
        for _ in range(len(tasks) - len(pending)):
            progress.update(cached=True)
    if not pending:
        if progress is not None:
            progress.finish()
        return [done[t.task_hash()] for t in tasks]

    ctx = multiprocessing.get_context()
    trace_arg = None if trace_dir is None else os.fspath(trace_dir)

    def spawn(generation: int) -> "multiprocessing.Process":
        proc = ctx.Process(
            target=serve_worker,
            args=(
                store.url,
                pending,
                lease_ttl,
                reuse_workspace,
                retry,
                None if chaos is None else chaos.with_generation(generation),
                trace_arg,
            ),
            name=f"repro-serve-g{generation}",
            daemon=True,
        )
        proc.start()
        return proc

    # Worker i starts in generation i; every restart gets a fresh
    # generation beyond the initial block, re-rolling its chaos draws
    # so an injected kill-fate cannot follow the restarted worker.
    procs = [spawn(i) for i in range(workers)]
    restarts = 0
    tracer = None if trace_arg is None else _worker_tracer(trace_arg)

    # Graceful shutdown: a signal sets the flag; the poll loop drains
    # the fleet and raises ServeInterrupted.  Signal handlers may only
    # be installed on the process main thread — elsewhere (tests
    # driving serve_campaign from a thread) drain-on-signal simply
    # isn't armed.
    interrupted: "list[int]" = []
    previous_handlers: "dict[int, object]" = {}
    if threading.current_thread() is threading.main_thread():

        def _on_signal(signum, frame):  # pragma: no cover - signal context
            interrupted.append(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _on_signal)

    wanted = {t.task_hash() for t in pending}
    try:
        reported = 0
        while True:
            if interrupted:
                _drain_fleet(procs)
                raise ServeInterrupted(interrupted[0])
            missing = _missing_hashes(store, wanted)
            if progress is not None:
                finished = len(wanted) - len(missing)
                for _ in range(finished - reported):
                    progress.update()
                reported = finished
            if not missing:
                break
            # Supervision: restart crashed workers (nonzero exit — a
            # clean drain exits 0 and stays down) until the budget is
            # spent; after that the fleet is allowed to die off and the
            # all-dead check below reports what was lost.
            for i, proc in enumerate(procs):
                if proc.is_alive() or not proc.exitcode:
                    continue
                if restarts >= restart_budget:
                    continue
                restarts += 1
                METRICS.inc("campaign.worker_restarts")
                if tracer is not None:
                    tracer.emit(
                        "worker-restart",
                        exitcode=proc.exitcode,
                        restarts=restarts,
                        name=proc.name,
                    )
                procs[i] = spawn(workers + restarts - 1)
            if not any(p.is_alive() for p in procs):
                raise RuntimeError(
                    f"all serve workers exited but {len(missing)} task(s) "
                    "never produced a record; see worker stderr"
                )
            time.sleep(poll_interval)
        for proc in procs:
            proc.join()
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join()
        if tracer is not None:
            tracer.close()
        if progress is not None:
            progress.finish()

    done, still_pending = store.resume(tasks)
    if still_pending:  # pragma: no cover - the poll loop above waits for all
        raise RuntimeError(f"{len(still_pending)} task(s) missing after serve")
    records = [done[t.task_hash()] for t in tasks]
    quarantined = sum(1 for r in records if r.get("kind") == "quarantine")
    if quarantined:
        METRICS.inc("campaign.quarantined", quarantined)
    return records


def _drain_fleet(procs) -> None:
    """Forward SIGTERM to every live worker and wait for the drain:
    each finishes its in-flight task, appends telemetry and exits 0."""
    for proc in procs:
        if proc.is_alive():
            proc.terminate()  # delivers SIGTERM -> worker drain handler
    deadline = time.monotonic() + _DRAIN_JOIN_S
    for proc in procs:
        proc.join(max(0.0, deadline - time.monotonic()))
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.kill()
            proc.join()


def _missing_hashes(store: "StoreBackend", wanted: "set[str]") -> "set[str]":
    present = set()
    for rec in store.iter_records():
        h = rec.get("hash")
        if h in wanted:
            present.add(h)
    return wanted - present


def serve_worker(
    store_url: str,
    tasks: "list[TaskSpec]",
    lease_ttl: float,
    reuse_workspace: bool = True,
    retry: "RetryPolicy | None" = None,
    chaos: "ChaosPolicy | None" = None,
    trace_dir: "str | None" = None,
) -> None:
    """One fleet worker: claim → execute → append → release, until no
    task is pending (or a drain signal arrives).

    Module-level so it pickles under every multiprocessing start
    method.  The worker opens its own store from the URL (handles and
    connections never cross the process boundary) and identifies
    itself to the lease board as ``pid-<pid>-<nonce>``.  Execution runs
    through :func:`repro.chaos.run_guarded` when a retry policy or
    chaos policy is armed; otherwise it is the plain legacy path.
    """
    from repro.campaign.executor import (
        _telemetry_state,
        _worker_tracer,
        execute_task,
        load_partials,
    )
    from repro.chaos import run_guarded
    from repro.store import open_store

    store = open_store(store_url)
    _require_leases(store)
    owner = f"pid-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    pending = {t.task_hash(): t for t in tasks}
    # Adaptive tasks resume from partial-progress records (completed
    # reps of tasks whose final record never landed — e.g. a peer died
    # mid-task) and flush their own partials through this worker's
    # store handle.
    priors = load_partials(store, {h for h, t in pending.items() if t.sampling})
    tracer = None if trace_dir is None else _worker_tracer(trace_dir)
    # Baseline for this worker's telemetry delta: values a forked
    # worker inherited from the dispatcher must not leak into it.
    telemetry_base = _telemetry_state()

    # Drain protocol: SIGINT/SIGTERM set the event; the loop finishes
    # its in-flight task, then falls through to the telemetry append
    # and a clean exit 0 (which supervision knows not to restart).
    drain = threading.Event()
    if threading.current_thread() is threading.main_thread():

        def _on_signal(signum, frame):  # pragma: no cover - signal context
            drain.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, _on_signal)

    while pending and not drain.is_set():
        # Refresh the view of finished work (ours and every peer's).
        for h in _present_hashes(store, set(pending)):
            pending.pop(h, None)
        claimed = None
        for h, task in pending.items():
            if store.try_claim(h, owner, lease_ttl):
                claimed = (h, task)
                break
        if claimed is None:
            if pending:
                time.sleep(_IDLE_SLEEP_S)
            continue
        h, task = claimed
        try:
            # Recheck after winning the claim: a stolen task may have
            # been finished by its original owner between our scans.
            if h in _present_hashes(store, {h}):
                pending.pop(h, None)
                continue

            def run(task=task, h=h):
                kwargs = {}
                if task.sampling:
                    kwargs = {"prior": priors.get(h), "partial_store": store}
                return run_guarded(
                    task,
                    retry=retry,
                    chaos=chaos,
                    tracer=tracer,
                    execute=execute_task,
                    reuse_workspace=reuse_workspace,
                    trace_dir=trace_dir,
                    **kwargs,
                )

            record = _execute_with_heartbeat(store, h, owner, lease_ttl, run)
            if chaos is not None and chaos.should("tear", h):
                _chaos_tear(store, record, tracer)  # never returns
            store.append(record)
            pending.pop(h, None)
        finally:
            store.release(h, owner)
    if tracer is not None:
        tracer.close()
    _append_worker_telemetry(store, owner, telemetry_base)
    store.close()


def _present_hashes(store: "StoreBackend", wanted: "set[str]") -> "set[str]":
    return wanted - _missing_hashes(store, wanted)


def _execute_with_heartbeat(
    store, key, owner, lease_ttl, runner: "Callable[[], dict]"
):
    """Run one task (a zero-argument runner) while a daemon thread
    keeps its lease warm.

    The heartbeat is what distinguishes "slow" from "dead": a task may
    legitimately outlive the TTL, so liveness — not task duration — is
    what peers watch before stealing.  (That is also why an injected
    *hang* is healed by ``--task-timeout``, not by lease stealing: a
    hung worker still heartbeats.)
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(lease_ttl / 3):
            if not store.heartbeat(key, owner, lease_ttl):
                return  # lease lost (stolen); finish anyway — idempotent

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        return runner()
    finally:
        stop.set()
        thread.join()


def _chaos_tear(store, record: dict, tracer) -> None:
    """Injected torn write: append a truncated record fragment (no
    trailing newline) straight to the backing file, then crash the
    worker — the exact footprint of a process dying mid-``write``.

    Only the JSONL-backed stores have a raw byte tail to tear; for
    transactional backends (sqlite) the injection degrades to a crash
    *before* the append, which is their actual worst case.  Never
    returns.
    """
    from repro.campaign.store import ResultStore
    from repro.chaos.policy import CHAOS_EXIT_CODE
    from repro.store.integrity import seal_record
    from repro.store.sharded import ShardedStore

    target = None
    if isinstance(store, ResultStore):
        target = store.path
    elif isinstance(store, ShardedStore):
        store._write_meta()  # a real append would have created it
        target = store._shard_path(store.shard_index(record["hash"]))
    if target is not None:
        line = json.dumps(seal_record(record)).encode()
        os.makedirs(os.path.dirname(os.fspath(target)) or ".", exist_ok=True)
        with open(target, "ab") as fh:
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
    if tracer is not None:
        tracer.emit(
            "chaos-inject", site="tear", task=record.get("hash"), attempt=0
        )
        try:
            tracer.close()
        except Exception:  # pragma: no cover - best effort
            pass
    os._exit(CHAOS_EXIT_CODE)


def _append_worker_telemetry(
    store: "StoreBackend", owner: str, base: dict
) -> None:
    """One ``kind="telemetry"`` record per worker that executed tasks,
    mirroring :func:`repro.campaign.executor.run_campaign`'s schema."""
    from repro.campaign.executor import TELEMETRY_SCHEMA, _telemetry_state
    from repro.obs.metrics import diff_snapshots

    delta = diff_snapshots(_telemetry_state(), base)
    fresh = int(delta["counters"].get("campaign.tasks", 0))
    if not fresh:
        return
    store.append(
        {
            "hash": f"telemetry:{uuid.uuid4().hex}",
            "kind": "telemetry",
            "schema": TELEMETRY_SCHEMA,
            "serve_worker": owner,
            "jobs": 1,
            "workers": 1,
            "fresh": fresh,
            "cached": 0,
            "counters": delta["counters"],
            "timers": delta["timers"],
        }
    )
