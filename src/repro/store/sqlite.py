"""SQLite store: transactional multi-process campaign persistence.

One store is one SQLite database in WAL mode::

    records(hash TEXT PRIMARY KEY, body TEXT)   -- body = json.dumps(record)
    leases(key TEXT PRIMARY KEY, owner TEXT, deadline REAL)

Records keep the *same JSON text* the JSONL backends write — floats
round-trip via ``repr`` bit for bit, so migrating a store between
backends (:func:`repro.store.migrate_store`) is lossless and resumed
aggregates stay bit-identical.

Durability and concurrency come from SQLite itself:

- WAL journaling makes every ``append`` an atomic committed
  transaction — the crash footprint is "the record in flight", never
  a torn line, so no salvage pass is needed;
- ``INSERT ... ON CONFLICT(hash) DO UPDATE`` gives the store's
  last-wins identity natively while keeping the record's original
  ``rowid`` — iteration order is first-insertion order with updated
  values, exactly the dict-fold semantics of the JSONL backends;
- writers from several processes serialize on SQLite's own locking
  (with a generous ``busy_timeout``), which also makes the lease table
  a real atomic claim: ``INSERT OR IGNORE`` either wins the key or
  does nothing, with no advisory race window at all.

Connections are per ``(instance, pid)``: a forked campaign worker
never reuses its parent's connection (SQLite connections must not
cross ``fork``), it lazily opens its own.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import time
from typing import Iterator

from repro.campaign.store import StoreError
from repro.store.protocol import default_resume

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    hash TEXT PRIMARY KEY,
    body TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    key TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    deadline REAL NOT NULL
);
"""

#: How long a writer waits on a locked database before giving up (ms).
_BUSY_TIMEOUT_MS = 30_000


class SqliteStore:
    """Campaign result store backed by a WAL-mode SQLite database.

    Construction never touches the filesystem (so ``sqlite:new.db`` can
    be validated and inspected before it exists); the database file and
    schema are created on first append.
    """

    supports_leases: bool = True

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = pathlib.Path(path)
        self._conn: "sqlite3.Connection | None" = None
        self._pid: "int | None" = None

    @property
    def url(self) -> str:
        return f"sqlite:{self.path}"

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect(self, *, create: bool) -> "sqlite3.Connection | None":
        """The process-local connection; ``None`` for reads of a store
        that does not exist yet."""
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        if self._conn is not None:
            # Forked child: the inherited connection belongs to the
            # parent.  Drop the reference without closing (closing
            # would roll back the parent's WAL state from the wrong
            # process) and open our own.
            self._conn = None
        if not create and not self.path.exists():
            return None
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # The schema + WAL-switch sequence below can hit SQLITE_BUSY in a
        # form the busy handler never retries (a lock-upgrade deadlock
        # when several processes open a *fresh* database at once), so the
        # whole open sequence retries within the same time budget.
        deadline = time.monotonic() + _BUSY_TIMEOUT_MS / 1000
        while True:
            conn = None
            try:
                conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_MS / 1000)
                conn.executescript(_SCHEMA)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.commit()
                break
            except sqlite3.Error as exc:
                if conn is not None:
                    conn.close()
                contended = isinstance(exc, sqlite3.OperationalError) and (
                    "locked" in str(exc) or "busy" in str(exc)
                )
                if contended and time.monotonic() < deadline:
                    time.sleep(0.05)
                    continue
                raise StoreError(
                    f"{self.path}: cannot open sqlite store ({exc})"
                ) from exc
        self._conn = conn
        self._pid = os.getpid()
        return conn

    # ------------------------------------------------------------------
    # StoreBackend protocol
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Seal the record (per-record CRC32,
        :mod:`repro.store.integrity`) and upsert it by hash in its own
        committed transaction."""
        from repro.store.integrity import seal_record

        if "hash" not in record:
            raise ValueError("record must carry a 'hash' key")
        conn = self._connect(create=True)
        body = json.dumps(seal_record(record))
        with conn:
            conn.execute(
                "INSERT INTO records(hash, body) VALUES(?, ?) "
                "ON CONFLICT(hash) DO UPDATE SET body = excluded.body",
                (record["hash"], body),
            )

    def _decode(self, row_hash: str, body: str) -> dict:
        """Parse and verify one row's body (seal stripped), raising
        :class:`StoreError` on malformed JSON, a hash/key mismatch, or
        a failing CRC32 seal."""
        from repro.store.integrity import check_record

        try:
            rec = json.loads(body)
            if not isinstance(rec, dict) or rec.get("hash") != row_hash:
                raise ValueError("record body does not match its key")
        except ValueError as exc:
            raise StoreError(
                f"{self.path}: corrupt record for hash {row_hash!r} ({exc})"
            ) from exc
        rec, verdict = check_record(rec)
        if verdict is False:
            raise StoreError(
                f"{self.path}: record {row_hash!r} failed its checksum"
            )
        return rec

    def iter_records(self) -> "Iterator[dict]":
        """Stream records in first-insertion (rowid) order.

        Unlike the JSONL backends a hash appears at most once here —
        the upsert already applied last-wins — so downstream dict folds
        are no-ops, not corrections.  Corruption (malformed body, a
        hash/key mismatch, a failing CRC32 seal) raises
        :class:`StoreError`: SQLite's transactional appends mean there
        is no benign crash footprint to tolerate here.
        """
        conn = self._connect(create=False)
        if conn is None:
            return
        cursor = conn.execute("SELECT hash, body FROM records ORDER BY rowid")
        for row_hash, body in cursor:
            yield self._decode(row_hash, body)

    def iter_intact(self) -> "Iterator[dict]":
        """Stream only the rows that parse and verify (``repro store
        repair``); corrupt rows are skipped and counted in METRICS."""
        conn = self._connect(create=False)
        if conn is None:
            return
        cursor = conn.execute("SELECT hash, body FROM records ORDER BY rowid")
        for row_hash, body in cursor:
            try:
                yield self._decode(row_hash, body)
            except StoreError:
                from repro.obs.metrics import METRICS

                METRICS.inc("store.corrupt_skipped")

    def verify(self) -> dict:
        """Integrity scan for ``repro store verify`` (see
        :meth:`repro.campaign.store.ResultStore.verify`; SQLite has no
        torn tails, so ``torn_tail`` is always ``False``)."""
        from repro.store.integrity import check_record

        sealed = unsealed = corrupt = 0
        conn = self._connect(create=False)
        if conn is not None:
            cursor = conn.execute("SELECT hash, body FROM records ORDER BY rowid")
            for row_hash, body in cursor:
                try:
                    rec = json.loads(body)
                    if not isinstance(rec, dict) or rec.get("hash") != row_hash:
                        raise ValueError("mismatch")
                except ValueError:
                    corrupt += 1
                    continue
                verdict = check_record(rec)[1]
                if verdict is False:
                    corrupt += 1
                elif verdict is True:
                    sealed += 1
                else:
                    unsealed += 1
        return {
            "records": sealed + unsealed,
            "corrupt": corrupt,
            "sealed": sealed,
            "unsealed": unsealed,
            "torn_tail": False,
        }

    def load(self) -> "dict[str, dict]":
        return {rec["hash"]: rec for rec in self.iter_records()}

    def resume(self, tasks):
        return default_resume(self, tasks)

    def count(self) -> int:
        conn = self._connect(create=False)
        if conn is None:
            return 0
        (n,) = conn.execute("SELECT COUNT(*) FROM records").fetchone()
        return int(n)

    def info(self) -> dict:
        """Layout facts for ``repro store info``: record and lease row
        counts straight from SQL, no payloads."""
        exists = self.path.exists()
        conn = self._connect(create=False)
        leases = 0
        if conn is not None:
            (leases,) = conn.execute("SELECT COUNT(*) FROM leases").fetchone()
        return {
            "backend": "sqlite",
            "url": self.url,
            "exists": exists,
            "records": self.count(),
            "bytes": self.path.stat().st_size if exists else 0,
            "active_leases": int(leases),
        }

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # leases (serve mode)
    # ------------------------------------------------------------------
    def try_claim(self, key: str, owner: str, ttl: float) -> bool:
        """Atomically claim ``key`` for ``owner``; ``True`` if won.

        A free key is won by ``INSERT OR IGNORE``; a held key is won
        only by the single ``UPDATE`` that observes its deadline
        expired — SQLite serializes both, so exactly one claimer
        succeeds.
        """
        conn = self._connect(create=True)
        now = time.time()
        with conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO leases(key, owner, deadline) VALUES(?, ?, ?)",
                (key, owner, now + ttl),
            )
            if cur.rowcount:
                return True
            cur = conn.execute(
                "UPDATE leases SET owner = ?, deadline = ? "
                "WHERE key = ? AND deadline < ?",
                (owner, now + ttl, key, now),
            )
            return bool(cur.rowcount)

    def heartbeat(self, key: str, owner: str, ttl: float = 60.0) -> bool:
        """Push the lease deadline out; ``False`` if no longer held."""
        conn = self._connect(create=True)
        with conn:
            cur = conn.execute(
                "UPDATE leases SET deadline = ? WHERE key = ? AND owner = ?",
                (time.time() + ttl, key, owner),
            )
            return bool(cur.rowcount)

    def release(self, key: str, owner: str) -> None:
        """Drop the lease if still held by ``owner`` (idempotent)."""
        conn = self._connect(create=True)
        with conn:
            conn.execute(
                "DELETE FROM leases WHERE key = ? AND owner = ?", (key, owner)
            )

    def holds(self, key: str, owner: str) -> bool:
        """Whether ``owner`` currently holds the lease."""
        conn = self._connect(create=False)
        if conn is None:
            return False
        row = conn.execute(
            "SELECT owner FROM leases WHERE key = ?", (key,)
        ).fetchone()
        return row is not None and row[0] == owner
