"""Per-record checksums: detect bit rot before it poisons aggregates.

Every record the JSONL-family stores write is *sealed* with a CRC32 of
its own serialized body, carried as a final ``"crc"`` key::

    {"hash": "...", "task": {...}, ..., "crc": "1:9f3a01c2"}

The value is ``<schema-version>:<crc32 of json.dumps(record-without-
crc) as 8 hex digits>``.  Design points:

- **Readers strip the seal.**  :func:`check_record` returns the record
  *without* the ``crc`` key, so records loaded from a store compare
  equal to the in-memory records that produced them — the campaign
  bit-identity contract ("store round trips are invisible") survives
  checksumming.
- **Old stores stay readable.**  A record without ``crc`` verifies as
  "unchecksummed" (``None``), never as corrupt; a seal with an unknown
  schema version is stripped but not judged (a newer writer may hash
  differently — refusing to guess beats false alarms).
- **The seal is last.**  ``crc`` is appended after every other key, so
  a torn prefix of a sealed line is never itself a parseable record —
  tearing cannot forge a passing checksum.
- **CRC32, not SHA.**  The threat is storage bit rot and torn
  concurrent writes, not adversaries; CRC32 is ~free next to the JSON
  serialization the append already pays (the ≤2% hardened-path
  benchmark gate in ``benchmarks/bench_chaos.py`` covers it).

``repro store verify`` walks a store with these helpers and reports
intact / corrupt / unchecksummed counts; ``repro store repair``
re-derives a clean store from the intact records.
"""

from __future__ import annotations

import json
import zlib

__all__ = ["CRC_SCHEMA", "seal_record", "check_record", "strip_seal"]

#: Current seal schema version (the ``N`` in ``"N:<hex>"``).
CRC_SCHEMA: int = 1


def _crc_of(record: dict) -> str:
    return f"{zlib.crc32(json.dumps(record).encode()) & 0xFFFFFFFF:08x}"


def seal_record(record: dict) -> dict:
    """A copy of ``record`` carrying its own CRC32 as a final ``crc``
    key (an existing seal is recomputed, so re-appending a loaded
    record never double-seals)."""
    body = {k: v for k, v in record.items() if k != "crc"}
    sealed = dict(body)
    sealed["crc"] = f"{CRC_SCHEMA}:{_crc_of(body)}"
    return sealed


def check_record(record: dict) -> "tuple[dict, bool | None]":
    """Verify and strip a record's seal.

    Returns ``(record_without_crc, verdict)`` where the verdict is
    ``True`` (seal present and matches), ``False`` (seal present and
    the body does not hash to it — bit rot), or ``None`` (no seal, or
    a seal schema this reader does not know).
    """
    seal = record.get("crc")
    if not isinstance(seal, str):
        return record, None
    body = {k: v for k, v in record.items() if k != "crc"}
    version, sep, digest = seal.partition(":")
    if not sep or version != str(CRC_SCHEMA):
        return body, None
    return body, _crc_of(body) == digest


def strip_seal(record: dict) -> dict:
    """The record without its ``crc`` key (no verification)."""
    if "crc" not in record:
        return record
    return {k: v for k, v in record.items() if k != "crc"}
