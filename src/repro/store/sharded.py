"""Sharded JSONL store: hash-partitioned files for concurrent writers.

One store is a *directory* of append-only JSONL shard files plus a
small metadata file::

    campaign.d/
        store.json          {"format": "repro-sharded-jsonl", ...}
        shard-00.jsonl      records whose hash lands in partition 0
        shard-01.jsonl      ...
        leases/             advisory lease files (serve mode)

Every record is routed to the shard its content hash selects
(:meth:`ShardedStore.shard_index` — a pure function of the hash, so
every process agrees on placement without coordination).  That gives
the multi-writer property the single-file store cannot have: two
workers writing *different* tasks usually touch different files, and
when they do share one, each append is a single ``O_APPEND`` write of
one whole line, so lines never interleave.  Each shard individually
keeps the JSONL durability contract of
:class:`~repro.campaign.store.ResultStore` — torn-tail salvage is
*per shard*: a crash in one worker can tear at most the tail of the
shards it was appending to, and every other shard stays pristine.

Because shards have *concurrent* writers, their durability handling
differs from the single-writer file in two deliberate ways
(``docs/DESIGN.md`` §10): torn tails are neutralized by an atomic
appended newline instead of truncation (truncating could destroy a
peer's record appended after the tear), and shard readers are
*tolerant* — a corrupt complete line (a crashed peer's joined write,
or bit rot caught by the per-record CRC32) is skipped with a counted
:class:`~repro.campaign.store.StoreIntegrityWarning` rather than
raising, the lost record healing by re-execution on resume.

Leases (serve mode) are implemented as files under ``leases/``:
claiming is an atomic ``O_CREAT | O_EXCL`` create, heartbeats bump the
file's mtime, and stealing an expired lease is an atomic rename over
it.  See :mod:`repro.store.protocol` for why leases are advisory.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pathlib
import time
from typing import Iterator

from repro.campaign.store import ResultStore, StoreError
from repro.store.protocol import default_resume

__all__ = ["ShardedStore", "DEFAULT_SHARDS"]

#: Default partition count: enough that a typical worker fleet (≤ 32)
#: rarely collides on one file, small enough that an `ls` stays legible.
DEFAULT_SHARDS: int = 16

_META_NAME = "store.json"
_FORMAT = "repro-sharded-jsonl"


class ShardedStore:
    """Task-hash-partitioned JSONL store (directory of shards).

    Parameters
    ----------
    path:
        Store directory; created (with parents) on first write.
    shards:
        Partition count for a *new* store.  An existing store's
        ``store.json`` always wins — the partition function must match
        what the directory was written with, or placement-based
        dedup/count would silently break.

    Construction never touches the filesystem; reads of a store that
    was never written behave as reads of an empty store.
    """

    supports_leases: bool = True

    def __init__(self, path: "str | os.PathLike[str]", *, shards: int = DEFAULT_SHARDS) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.path = pathlib.Path(path)
        self._requested_shards = int(shards)
        self._shards: "int | None" = None  # resolved lazily against store.json
        self._stores: "dict[int, ResultStore]" = {}

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"sharded:{self.path}"

    @property
    def shards(self) -> int:
        """Partition count (resolving ``store.json`` on first use)."""
        if self._shards is None:
            meta = self._read_meta()
            self._shards = (
                int(meta["shards"]) if meta is not None else self._requested_shards
            )
        return self._shards

    def _meta_path(self) -> pathlib.Path:
        return self.path / _META_NAME

    def _read_meta(self) -> "dict | None":
        meta_path = self._meta_path()
        if not meta_path.exists():
            if self.path.exists() and any(self.path.glob("shard-*.jsonl")):
                raise StoreError(
                    f"{self.path}: shard files present but {_META_NAME} is "
                    "missing — the store cannot verify its partition count"
                )
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != _FORMAT or int(meta["shards"]) < 1:
                raise ValueError(f"not a {_FORMAT} store")
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(f"{meta_path}: corrupt store metadata ({exc})") from exc
        return meta

    def _write_meta(self) -> None:
        # Atomic publish (tmp + rename): a concurrent writer either
        # sees no metadata (and writes the identical content — the
        # shard count is fixed by whoever creates the store first via
        # the O_EXCL create below) or a complete file.
        meta_path = self._meta_path()
        if meta_path.exists():
            self._sync_shards()
            return
        self.path.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"format": _FORMAT, "version": 1, "shards": self.shards}
        ) + "\n"
        try:
            fd = os.open(meta_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            # Another writer published first; adopt its partition count
            # before routing anything.
            self._sync_shards()
            return
        try:
            os.write(fd, payload.encode())
        finally:
            os.close(fd)

    def _sync_shards(self) -> None:
        """Adopt the published partition count if no record was routed
        yet (a losing creation race must not route with its own)."""
        if self._stores:
            return
        meta = self._read_meta()
        if meta is not None:
            self._shards = int(meta["shards"])

    def shard_index(self, record_hash: str) -> int:
        """Partition for a record hash — a pure function every process
        computes identically.

        Task hashes are hex (SHA-256), so their leading digits are a
        uniform partition key; non-hex hashes (``telemetry:<uuid>``
        records) are re-hashed first.
        """
        try:
            prefix = int(record_hash[:8], 16)
        except ValueError:
            digest = hashlib.sha256(record_hash.encode()).hexdigest()
            prefix = int(digest[:8], 16)
        return prefix % self.shards

    def _shard_path(self, index: int) -> pathlib.Path:
        return self.path / f"shard-{index:02x}.jsonl"

    def _shard_store(self, index: int) -> ResultStore:
        store = self._stores.get(index)
        if store is None:
            # Shards are multi-writer files: torn tails are neutralized
            # by an atomic newline append (never truncated — a peer may
            # have appended past the tear), and readers skip corrupt
            # lines with a counted StoreIntegrityWarning instead of
            # raising, because one corrupt joined line is a legitimate
            # crash footprint here.  The lost record heals by
            # re-execution: its hash is missing, so resume reruns it.
            store = self._stores[index] = ResultStore(
                self._shard_path(index), tolerant=True, shared=True
            )
        return store

    # ------------------------------------------------------------------
    # StoreBackend protocol
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Route the record to its hash's shard and durably append it.

        The first append of a process to a given shard repairs that
        shard's torn tail (crash salvage is per shard); the shard
        handle then stays open, so a worker appending many records
        pays one open per shard it ever touches, and workers touching
        disjoint shards never contend.
        """
        if "hash" not in record:
            raise ValueError("record must carry a 'hash' key")
        self._write_meta()
        self._shard_store(self.shard_index(record["hash"])).append(record)

    def iter_records(self) -> "Iterator[dict]":
        """Stream records shard by shard (index order), file order
        within each shard.

        The order is stable but *not* the global append order — shards
        are independent logs.  Every fold in the library is either
        keyed by hash (resume, last-wins dedup) or canonicalized by
        task order / hash order before any float accumulation, so
        aggregates do not depend on it.
        """
        for index in range(self.shards):
            yield from self._shard_store(index).iter_records()

    def load(self) -> "dict[str, dict]":
        records: "dict[str, dict]" = {}
        for rec in self.iter_records():
            records[rec["hash"]] = rec
        return records

    def resume(self, tasks):
        return default_resume(self, tasks)

    def count(self) -> int:
        # A hash's shard is fixed, so distinct-per-shard sums to
        # distinct overall.
        return sum(
            self._shard_store(index).count() for index in range(self.shards)
        )

    @property
    def corrupt_skipped(self) -> int:
        """Corrupt lines skipped by this instance's tolerant shard
        readers (summed over shards)."""
        return sum(s.corrupt_skipped for s in self._stores.values())

    def iter_intact(self) -> "Iterator[dict]":
        """Stream only records that parse and verify (``repro store
        repair``); corrupt lines are counted, never raised."""
        for index in range(self.shards):
            yield from self._shard_store(index).iter_intact()

    def verify(self) -> dict:
        """Integrity scan summed over shards (see
        :meth:`repro.campaign.store.ResultStore.verify`); ``torn_tail``
        is true if *any* shard ends torn."""
        totals = {"records": 0, "corrupt": 0, "sealed": 0, "unsealed": 0,
                  "torn_tail": False}
        for index in range(self.shards):
            part = self._shard_store(index).verify()
            for key in ("records", "corrupt", "sealed", "unsealed"):
                totals[key] += part[key]
            totals["torn_tail"] = totals["torn_tail"] or part["torn_tail"]
        return totals

    def info(self) -> dict:
        """Layout facts for ``repro store info``: per-shard fill and
        lease activity, without materializing any payload."""
        exists = self.path.exists()
        shard_records = []
        shard_bytes = 0
        for index in range(self.shards):
            shard_records.append(self._shard_store(index).count())
            shard_path = self._shard_path(index)
            if shard_path.exists():
                shard_bytes += shard_path.stat().st_size
        leases_dir = self.path / "leases"
        return {
            "backend": "sharded",
            "url": self.url,
            "exists": exists,
            "records": sum(shard_records),
            "bytes": shard_bytes,
            "shards": self.shards,
            "shard_records": shard_records,
            "active_leases": (
                len(list(leases_dir.glob("*.lease"))) if leases_dir.exists() else 0
            ),
        }

    def close(self) -> None:
        for store in self._stores.values():
            store.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------
    # leases (serve mode)
    # ------------------------------------------------------------------
    def _lease_path(self, key: str) -> pathlib.Path:
        safe = key if key.replace("-", "").isalnum() else (
            hashlib.sha256(key.encode()).hexdigest()
        )
        return self.path / "leases" / f"{safe}.lease"

    def try_claim(self, key: str, owner: str, ttl: float) -> bool:
        """Claim the lease ``key`` for ``owner``; ``True`` if won.

        A free key is claimed by an atomic exclusive create.  A held
        key whose holder stopped heartbeating for ``ttl`` seconds is
        *stolen* by atomically renaming a fresh lease file over the
        stale one — if two stealers race, the last rename wins and the
        loser's subsequent :meth:`holds` check fails, so at most one
        worker keeps believing it owns the lease (and even the losing
        window is harmless: records are idempotent by content hash).
        """
        lease = self._lease_path(key)
        lease.parent.mkdir(parents=True, exist_ok=True)
        # owner + the *holder's* TTL: staleness is judged against the
        # horizon the holder promised to heartbeat within, not against
        # whatever TTL a would-be stealer happens to use (matching the
        # SQLite backend's stored deadline).
        payload = f"{owner}\n{ttl!r}\n".encode()
        try:
            fd = os.open(lease, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except OSError as exc:
            if exc.errno != errno.EEXIST:
                raise
        else:
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            return True
        # Held: steal only if the heartbeat (mtime) has gone stale.
        try:
            age = time.time() - lease.stat().st_mtime
            held_ttl = self._lease_ttl(key, default=ttl)
        except FileNotFoundError:
            # Released between our create attempt and the stat — retry
            # the exclusive create on the next scheduler pass.
            return False
        if age <= held_ttl:
            return False
        tmp = lease.with_suffix(f".steal-{owner}")
        tmp.write_bytes(payload)
        os.replace(tmp, lease)
        return self.holds(key, owner)

    def heartbeat(self, key: str, owner: str, ttl: float = 60.0) -> bool:
        """Refresh the lease's liveness (mtime bump — ``ttl`` is applied
        by the next claimer's staleness check); ``False`` if no longer
        held."""
        lease = self._lease_path(key)
        if not self.holds(key, owner):
            return False
        try:
            os.utime(lease)
        except FileNotFoundError:
            return False
        return True

    def release(self, key: str, owner: str) -> None:
        """Drop the lease if still held by ``owner`` (idempotent)."""
        lease = self._lease_path(key)
        if self.holds(key, owner):
            try:
                lease.unlink()
            except FileNotFoundError:
                pass

    def holds(self, key: str, owner: str) -> bool:
        """Whether ``owner`` currently holds the lease."""
        try:
            text = self._lease_path(key).read_text()
        except FileNotFoundError:
            return False
        return text.split("\n", 1)[0] == owner

    def _lease_ttl(self, key: str, *, default: float) -> float:
        """The TTL the current holder claimed with (``default`` for
        lease files predating the stored-TTL format)."""
        lines = self._lease_path(key).read_text().splitlines()
        try:
            return float(lines[1])
        except (IndexError, ValueError):
            return default
