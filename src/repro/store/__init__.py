"""Pluggable campaign result stores (the storage layer, DESIGN.md §9).

Every campaign persists one JSON record per completed task, keyed by
the task's content hash.  Where those records live is a *backend*
selected by a URL-style string, mirroring the kernel-backend registry
(:mod:`repro.backends`):

``path/to/store.jsonl`` (bare path — the default, ``jsonl:`` explicit)
    The original single-file append-only JSONL store
    (:class:`~repro.campaign.store.ResultStore`).  Bit-identical
    semantics preserved; the right choice for single-process
    campaigns.

``sharded:path/to/store.d``
    A directory of hash-partitioned JSONL shards
    (:class:`~repro.store.sharded.ShardedStore`): N workers appending
    concurrently rarely touch the same file, torn-tail crash salvage
    is per shard, and advisory file leases back serve mode.

``sqlite:path/to/store.db``
    A WAL-mode SQLite database
    (:class:`~repro.store.sqlite.SqliteStore`): transactional appends
    (no torn tails at all), native upsert-by-hash, safe concurrent
    multi-process writers and atomic leases.

All three keep the same contract (:mod:`repro.store.protocol`):
identical records in any backend yield bit-identical aggregates, and
``--resume`` recognizes completed tasks across a migration
(:func:`migrate_store` is lossless in both directions).

Custom backends register with :func:`register_store`; the scheme then
works everywhere a store is named — ``run_campaign(store=...)``,
``Study.run(store=...)``, every CLI ``--store``, ``repro report`` and
``repro store info/migrate``.
"""

from __future__ import annotations

import os
import pathlib
import re
from typing import Callable

from repro.campaign.store import ResultStore, StoreError, StoreIntegrityWarning
from repro.store.protocol import LeaseUnsupported, StoreBackend
from repro.store.serve import ServeInterrupted, serve_campaign
from repro.store.sharded import DEFAULT_SHARDS, ShardedStore
from repro.store.sqlite import SqliteStore

__all__ = [
    "StoreBackend",
    "StoreError",
    "StoreIntegrityWarning",
    "LeaseUnsupported",
    "ResultStore",
    "ShardedStore",
    "SqliteStore",
    "DEFAULT_SHARDS",
    "DEFAULT_STORE_SCHEME",
    "register_store",
    "available_store_schemes",
    "parse_store_url",
    "open_store",
    "migrate_store",
    "compact_store",
    "repair_store",
    "verify_store",
    "serve_campaign",
    "ServeInterrupted",
]

#: Scheme a bare path resolves to.
DEFAULT_STORE_SCHEME = "jsonl"

#: scheme -> path factory.  Factories take the path part of the URL
#: and return an unopened backend (construction must not touch disk).
_FACTORIES: "dict[str, Callable[[str], StoreBackend]]" = {
    "jsonl": ResultStore,
    "sharded": ShardedStore,
    "sqlite": SqliteStore,
}

#: ``scheme:`` prefix — at least two leading letters, so Windows drive
#: paths (``C:\...``) never parse as a scheme.
_SCHEME = re.compile(r"^([A-Za-z][A-Za-z0-9+._-]+):(.*)$")


def register_store(
    scheme: str, factory: "Callable[[str], StoreBackend]", *, replace: bool = False
) -> None:
    """Register a custom store backend under ``scheme``.

    ``factory`` takes the path part of ``scheme:path`` and returns a
    :class:`~repro.store.protocol.StoreBackend`.  The scheme is then
    accepted everywhere a store is named.  Shipped schemes cannot be
    overwritten unless ``replace=True``.

    Process-scope caveat (as for :func:`repro.backends
    .register_backend`): the registry is per-process state; campaign
    workers inherit it under ``fork`` but a ``spawn`` worker must
    re-register at import time.
    """
    if len(scheme) < 2 or not _SCHEME.match(f"{scheme}:x"):
        raise ValueError(
            f"store scheme must be at least two characters of "
            f"[A-Za-z0-9+._-] starting with a letter, got {scheme!r}"
        )
    if scheme in _FACTORIES and not replace:
        raise ValueError(
            f"store scheme {scheme!r} is already registered "
            "(pass replace=True to override)"
        )
    _FACTORIES[scheme] = factory


def available_store_schemes() -> "list[str]":
    """Registered scheme names, default first."""
    names = sorted(_FACTORIES)
    names.remove(DEFAULT_STORE_SCHEME)
    return [DEFAULT_STORE_SCHEME, *names]


def parse_store_url(spec: "str | os.PathLike[str]") -> "tuple[str, str]":
    """Split a store selector into ``(scheme, path)``.

    ``sharded:dir`` / ``sqlite:file.db`` / ``jsonl:file`` select a
    registered backend; a bare path (or any ``os.PathLike``) is the
    default JSONL store.  Unknown schemes raise ``ValueError`` naming
    the registered ones — a mistyped scheme must fail loudly, not
    silently become a strange filename.
    """
    if isinstance(spec, os.PathLike):
        return DEFAULT_STORE_SCHEME, os.fspath(spec)
    match = _SCHEME.match(spec)
    if match is None:
        return DEFAULT_STORE_SCHEME, spec
    scheme, path = match.groups()
    if scheme not in _FACTORIES:
        raise ValueError(
            f"unknown store scheme {scheme!r} "
            f"(expected one of: {', '.join(available_store_schemes())}; "
            "a bare path selects jsonl)"
        )
    if not path:
        raise ValueError(f"store selector {spec!r} is missing a path")
    return scheme, path


def open_store(spec: "StoreBackend | str | os.PathLike[str]") -> StoreBackend:
    """Resolve a store selector to a backend instance.

    An already-constructed backend passes through untouched (so APIs
    accepting ``store=`` compose with hand-built stores exactly as
    they always did with :class:`ResultStore`).  Construction never
    touches the filesystem — the store materializes on first append.
    """
    if not isinstance(spec, (str, os.PathLike)):
        if isinstance(spec, StoreBackend):
            return spec
        raise TypeError(
            f"store must be a StoreBackend, str or os.PathLike, got {type(spec)!r}"
        )
    scheme, path = parse_store_url(spec)
    return _FACTORIES[scheme](path)


def store_exists(spec: "StoreBackend | str | os.PathLike[str]") -> bool:
    """Whether the selector's backing file/directory exists on disk."""
    store = open_store(spec)
    return pathlib.Path(store.path).exists()


def migrate_store(
    src: "StoreBackend | str | os.PathLike[str]",
    dst: "StoreBackend | str | os.PathLike[str]",
) -> int:
    """Copy every record of ``src`` into ``dst``; returns the count.

    Lossless by construction: records stream through unmodified (same
    dict, hence the same JSON text and bit-identical floats), so task
    hashes — and with them ``--resume`` — survive any
    jsonl↔sharded↔sqlite round trip, and aggregates computed from the
    copy equal the original's bit for bit.  Duplicate hashes collapse
    to their last-wins record, exactly as every reader already folds
    them.

    ``dst`` must be empty (or not exist): merging two live stores is a
    decision the caller should make explicitly, record by record, not
    a silent side effect of a copy.
    """
    src_store, dst_store = _open_pair(src, dst, verb="migrate")
    moved = 0
    seen: "set[str]" = set()
    for rec in src_store.iter_records():
        dst_store.append(rec)
        if rec["hash"] not in seen:
            seen.add(rec["hash"])
            moved += 1
    return moved


def _open_pair(
    src: "StoreBackend | str | os.PathLike[str]",
    dst: "StoreBackend | str | os.PathLike[str]",
    *,
    verb: str,
) -> "tuple[StoreBackend, StoreBackend]":
    """Resolve a (src, dst) store pair, refusing self-targets and
    populated destinations — shared by migrate / compact / repair."""
    src_store = open_store(src)
    dst_store = open_store(dst)
    if pathlib.Path(src_store.path).resolve() == pathlib.Path(dst_store.path).resolve():
        raise ValueError(f"cannot {verb} a store onto itself ({src_store.url})")
    if dst_store.count():
        raise ValueError(
            f"destination store {dst_store.url} already has records; "
            f"{verb} into an empty store"
        )
    return src_store, dst_store


def compact_store(
    src: "StoreBackend | str | os.PathLike[str]",
    dst: "StoreBackend | str | os.PathLike[str]",
    *,
    drop_quarantined: bool = False,
) -> int:
    """Write ``src``'s folded view into an empty ``dst``; returns the
    record count written.

    Compaction applies exactly the fold every reader performs —
    duplicate hashes collapse to their *last* occurrence, preserving
    first-appearance order (the JSONL fold order, i.e. plain dict
    semantics) — and drops ``kind="telemetry"`` records, which
    describe past runs of the source store, not the result set.  Task
    records, including their float payloads, pass through bit-for-bit,
    so reports over the compacted store equal reports over the source
    minus its telemetry block.

    ``drop_quarantined=True`` also drops ``kind="quarantine"`` records
    (:mod:`repro.chaos`), which un-settles those poison tasks: a
    resumed campaign against the compacted store will retry them.

    ``kind="partial"`` records (in-flight adaptive checkpoints,
    :mod:`repro.adaptive`) survive only while their task is still
    unsettled — once a final (or kept quarantine) record exists for the
    task, its partial is a dead checkpoint and compaction drops it.

    Like :func:`migrate_store`, ``dst`` must be empty or absent.
    """
    src_store, dst_store = _open_pair(src, dst, verb="compact")
    latest: "dict[str, dict]" = {}
    for rec in src_store.iter_records():
        if rec.get("kind") == "telemetry":
            continue
        if drop_quarantined and rec.get("kind") == "quarantine":
            # Last-wins applies before the drop: a quarantine record is
            # the hash's latest state, so dropping it un-settles the
            # task entirely (any earlier record for the hash goes too).
            latest.pop(rec["hash"], None)
            continue
        latest[rec["hash"]] = rec
    # Partial checkpoints are keyed "partial:<task_hash>"; a settled
    # task (any surviving record under the bare hash) obsoletes its
    # checkpoint, while an unsettled one keeps it so --resume against
    # the compacted store recomputes nothing.
    for h in [
        h for h, rec in latest.items()
        if rec.get("kind") == "partial" and rec.get("task_hash") in latest
    ]:
        del latest[h]
    for rec in latest.values():
        dst_store.append(rec)
    return len(latest)


def verify_store(spec: "StoreBackend | str | os.PathLike[str]") -> dict:
    """Integrity-scan a store without raising: counts of intact
    (sealed / unsealed) and corrupt records plus a ``torn_tail`` flag
    — see :meth:`repro.campaign.store.ResultStore.verify`."""
    store = open_store(spec)
    scan = getattr(store, "verify", None)
    if scan is None:  # custom backend without an integrity scan
        report = {
            "records": store.count(), "corrupt": 0, "sealed": 0,
            "unsealed": store.count(), "torn_tail": False,
        }
    else:
        report = scan()
    report["url"] = store.url
    return report


def repair_store(
    src: "StoreBackend | str | os.PathLike[str]",
    dst: "StoreBackend | str | os.PathLike[str]",
) -> "tuple[int, int]":
    """Re-derive a clean store from ``src``'s intact records.

    Streams every record that parses and passes its checksum into an
    empty ``dst`` (corrupt lines/rows are skipped and counted, never
    raised) and returns ``(kept, dropped)``.  The dropped records'
    task hashes are absent from ``dst``, so a resumed campaign simply
    re-executes those tasks — repair never invents data.
    """
    src_store, dst_store = _open_pair(src, dst, verb="repair")
    before = verify_store(src_store)
    intact = getattr(src_store, "iter_intact", src_store.iter_records)
    kept_hashes: "set[str]" = set()
    for rec in intact():
        dst_store.append(rec)
        kept_hashes.add(rec["hash"])
    return len(kept_hashes), int(before["corrupt"])
