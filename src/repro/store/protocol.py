"""The storage-backend contract (``docs/DESIGN.md`` §9).

A campaign store persists one JSON-serializable *record* per completed
task, keyed by the task's content hash.  :class:`StoreBackend` is the
structural protocol every backend implements; the registry in
:mod:`repro.store` resolves URL-style selectors (``sharded:dir/``,
``sqlite:file.db``, bare path → ``jsonl``) to instances.

The contract, in order of importance:

Durability (crash salvage)
    ``append`` makes the record durable *before* returning, up to the
    backend's declared crash footprint: a crash may lose the record in
    flight but must never corrupt previously appended ones.  Readers
    silently drop the crash footprint (a torn trailing line per JSONL
    file; an uncommitted transaction under SQLite) — the task simply
    reruns on resume — and raise
    :class:`~repro.campaign.store.StoreError` for damage anywhere
    else.

Exact floats
    Records are stored such that every float survives the round trip
    bit for bit (JSON text via ``repr``).  This is what makes resumed
    and migrated aggregates bit-identical to a single uninterrupted
    run, across *any* pair of backends.

Last-wins identity
    Records are keyed by their ``"hash"``.  Appending the same hash
    again replaces the earlier record's *value* while keeping its
    original position in iteration order — exactly what a Python dict
    fold over an append log does, and what SQLite's upsert-by-hash
    does natively.

Streaming reads
    ``iter_records`` yields records one at a time, in stable order,
    without materializing the store; every aggregation in the library
    folds over it incrementally, so reports work on partial multi-GB
    stores.

Concurrency
    A backend declares via :attr:`StoreBackend.supports_leases`
    whether several *processes* may append concurrently and
    coordinate through leases (:meth:`try_claim` /
    :meth:`heartbeat` / :meth:`release`).  The lease protocol backs
    serve mode (:mod:`repro.store.serve`); leases are advisory —
    correctness always comes from content-hash idempotence (two
    workers racing the same task write bit-identical records), leases
    only keep duplicate work rare.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.spec import TaskSpec

__all__ = ["StoreBackend", "LeaseUnsupported"]


class LeaseUnsupported(RuntimeError):
    """The backend cannot coordinate concurrent writers via leases."""


@runtime_checkable
class StoreBackend(Protocol):
    """Structural protocol for campaign result stores.

    Implementations are cheap to construct and must not touch the
    filesystem before the first ``append`` (so ``open_store`` can be
    used for validation and inspection of not-yet-existing stores);
    reads on a store that was never written behave as reads of an
    empty store.
    """

    #: Whether concurrent multi-process appends and the lease protocol
    #: are supported (serve mode requires it).
    supports_leases: bool

    #: Filesystem location backing the store (file or directory).
    path: "os.PathLike[str]"

    @property
    def url(self) -> str:
        """Canonical selector that :func:`repro.store.open_store`
        resolves back to an equivalent store."""
        ...

    def append(self, record: dict) -> None:
        """Durably append one record (must carry a ``"hash"`` key)."""
        ...

    def iter_records(self) -> "Iterator[dict]":
        """Stream records in stable order without materializing the
        store.  Duplicate hashes may appear; folds apply last-wins."""
        ...

    def load(self) -> "dict[str, dict]":
        """Materialize all records keyed by hash (last wins)."""
        ...

    def resume(
        self, tasks: "list[TaskSpec]"
    ) -> "tuple[dict[str, dict], list[TaskSpec]]":
        """Split ``tasks`` into (completed records, still-pending)."""
        ...

    def count(self) -> int:
        """Number of distinct record hashes (cheap; no payload parse)."""
        ...

    def close(self) -> None:
        """Release file handles/connections (idempotent)."""
        ...

    def __enter__(self) -> "StoreBackend": ...

    def __exit__(self, *exc_info: object) -> None: ...

    def __len__(self) -> int: ...


def default_resume(store: StoreBackend, tasks: "list[TaskSpec]"):
    """Shared streaming resume implementation for backends.

    Keeps only records whose hash one of ``tasks`` actually carries,
    so memory is proportional to the task list, not the store.
    """
    wanted = {t.task_hash() for t in tasks}
    done: "dict[str, dict]" = {}
    for rec in store.iter_records():
        if rec["hash"] in wanted:
            done[rec["hash"]] = rec  # duplicates: last wins
    pending = [t for t in tasks if t.task_hash() not in done]
    return done, pending
