"""Fault injection and self-healing execution for the campaign harness.

The solver side of this repo survives *silent* errors (the paper's
ABFT/checkpoint machinery); :mod:`repro.chaos` makes the *harness*
survive loud ones — crashed or hung workers, poison tasks, torn store
writes — and provides the seeded fault injector that proves it
(``docs/DESIGN.md`` §10).

- :class:`ChaosPolicy` / :func:`resolve_chaos` — deterministic,
  generation-salted fault injection (worker kills, hangs, store-write
  tears), off by default and zero-overhead when off;
- :class:`RetryPolicy` / :func:`run_guarded` — per-task wall-clock
  deadlines, bounded retry with backoff + jitter, and poison-task
  quarantine records;
- wired through ``run_campaign(task_timeout=, retries=, chaos=)``,
  ``serve_campaign`` worker supervision, and the matching CLI flags.
"""

from repro.chaos.harness import (
    QUARANTINE_SCHEMA,
    RetryPolicy,
    TaskTimeout,
    deadline,
    quarantine_record,
    resolve_retry,
    run_guarded,
)
from repro.chaos.policy import (
    CHAOS_ENV,
    CHAOS_EXIT_CODE,
    ChaosPolicy,
    resolve_chaos,
)

__all__ = [
    "ChaosPolicy",
    "resolve_chaos",
    "CHAOS_ENV",
    "CHAOS_EXIT_CODE",
    "RetryPolicy",
    "TaskTimeout",
    "resolve_retry",
    "run_guarded",
    "quarantine_record",
    "deadline",
    "QUARANTINE_SCHEMA",
]
