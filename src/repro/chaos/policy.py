"""Deterministic fault injection for the campaign harness.

The paper's engine survives *silent* errors inside the solver; this
module injects the *loud* ones the harness around it must survive —
worker crashes, hangs, and torn store writes — so the self-healing
paths (``docs/DESIGN.md`` §10) can be exercised deterministically in
tests and CI instead of waiting for real crashes.

A :class:`ChaosPolicy` is a frozen value object: every injection
decision is a pure function of ``(seed, generation, site, task_hash,
attempt)`` hashed through SHA-256, so two processes holding the same
policy agree on which task dies, and a re-run with the same seed
replays the same fault schedule.  Two properties make the injected
faults *healable* rather than fatal:

- **Home-process suppression.**  A policy remembers the pid it was
  resolved in (the dispatcher / test process).  Injection only fires
  in *other* processes — workers — so the supervising side, and the
  serial fallback that runs tasks in the dispatcher itself, never
  crash.
- **Generations.**  Crash decisions would otherwise be fate: a task
  whose draw says "kill" would kill every worker that ever retries it.
  Supervisors bump :meth:`ChaosPolicy.with_generation` on each pool
  rebuild / worker restart, which re-rolls every draw, so repeated
  recovery converges instead of looping.

Chaos is **off by default and zero-overhead when off**: campaign code
calls :func:`resolve_chaos`, which returns ``None`` unless a policy
was passed explicitly or the ``REPRO_CHAOS`` environment variable
names one (e.g. ``REPRO_CHAOS="kill=0.1,hang=0.05"``), and every hot
path guards on ``chaos is None`` exactly like ``tracer is None``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass

__all__ = ["ChaosPolicy", "resolve_chaos", "CHAOS_EXIT_CODE", "CHAOS_ENV"]

#: Exit status of a chaos-killed worker — distinctive, so supervisors
#: and tests can tell an injected crash from a real one.
CHAOS_EXIT_CODE = 86

#: Environment variable holding a default chaos spec (same syntax as
#: ``--chaos``); empty / ``"off"`` / ``"0"`` mean disabled.
CHAOS_ENV = "REPRO_CHAOS"

#: Injection sites, fixed strings so draws are stable across versions.
_SITES = ("kill", "hang", "tear")


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault-injection schedule for harness testing.

    Parameters
    ----------
    kill, hang, tear:
        Per-(task, attempt) probabilities in ``[0, 1]`` of, at the
        matching site, crashing the worker (``os._exit``), sleeping
        ``hang_s`` seconds mid-task, or tearing the store write of a
        finished record and then crashing.
    hang_s:
        Injected hang duration — finite, so an un-timeouted campaign
        stalls rather than deadlocks (a ``--task-timeout`` below this
        converts the hang into a retryable :class:`~repro.chaos
        .harness.TaskTimeout`).
    seed:
        Root of every decision draw.
    generation:
        Re-roll salt (see :meth:`with_generation`).
    home_pid:
        Pid in which injection is suppressed; filled by
        :func:`resolve_chaos`.
    """

    kill: float = 0.0
    hang: float = 0.0
    tear: float = 0.0
    hang_s: float = 30.0
    seed: int = 0
    generation: int = 0
    home_pid: "int | None" = None

    def __post_init__(self) -> None:
        for site in _SITES:
            p = getattr(self, site)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"chaos {site} probability must be in [0, 1], got {p}")
        if self.hang_s <= 0:
            raise ValueError(f"chaos hang_s must be > 0, got {self.hang_s}")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy | None":
        """Parse a ``--chaos`` spec: ``kill=0.2,hang=0.05,seed=7``.

        Keys are the dataclass fields (``kill``/``hang``/``tear``
        probabilities, ``hang_s``, ``seed``); ``off``, ``0`` and the
        empty string mean "no chaos" and return ``None``.
        """
        spec = spec.strip()
        if spec.lower() in ("", "off", "0", "none"):
            return None
        kwargs: "dict[str, float | int]" = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in ("kill", "hang", "tear", "hang_s", "seed"):
                raise ValueError(
                    f"bad chaos spec component {part!r} "
                    "(expected kill=P, hang=P, tear=P, hang_s=S or seed=N)"
                )
            try:
                kwargs[key] = int(value) if key == "seed" else float(value)
            except ValueError as exc:
                raise ValueError(f"bad chaos spec value {part!r}: {exc}") from exc
        policy = cls(**kwargs)  # type: ignore[arg-type]
        return policy if policy.enabled else None

    def with_generation(self, generation: int) -> "ChaosPolicy":
        """A copy whose decision draws are re-rolled (restart salt)."""
        return dataclasses.replace(self, generation=int(generation))

    def with_home(self, pid: "int | None" = None) -> "ChaosPolicy":
        """A copy that suppresses injection in ``pid`` (default: the
        calling process)."""
        return dataclasses.replace(
            self, home_pid=os.getpid() if pid is None else int(pid)
        )

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any injection site has a non-zero probability."""
        return self.kill > 0 or self.hang > 0 or self.tear > 0

    @property
    def active(self) -> bool:
        """Enabled *and* not suppressed in this process."""
        return self.enabled and os.getpid() != self.home_pid

    def draw(self, site: str, task_hash: str, attempt: int = 0) -> float:
        """The uniform ``[0, 1)`` decision draw for one injection site.

        Pure: every process computes the same value for the same
        arguments, which is what makes chaos runs replayable.
        """
        key = f"{self.seed}:{self.generation}:{site}:{task_hash}:{attempt}"
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def should(self, site: str, task_hash: str, attempt: int = 0) -> bool:
        """Whether to inject at ``site`` for this (task, attempt)."""
        if not self.active:
            return False
        p = getattr(self, site)
        return p > 0 and self.draw(site, task_hash, attempt) < p

    def to_spec(self) -> str:
        """The ``--chaos`` spec string this policy round-trips through."""
        return (
            f"kill={self.kill:g},hang={self.hang:g},tear={self.tear:g},"
            f"hang_s={self.hang_s:g},seed={self.seed}"
        )


def resolve_chaos(
    chaos: "ChaosPolicy | str | None",
) -> "ChaosPolicy | None":
    """Normalize a chaos argument to an armed policy or ``None``.

    ``None`` falls back to the :data:`CHAOS_ENV` environment spec (the
    gate that lets CI inject faults into unmodified commands); specs
    parse via :meth:`ChaosPolicy.parse`.  The returned policy always
    has a ``home_pid`` — the calling (dispatching) process — so the
    supervisor side never injects into itself.  Disabled policies
    collapse to ``None``, keeping ``chaos is None`` the zero-overhead
    fast-path test everywhere (the ``resolve_tracer`` discipline).
    """
    if chaos is None:
        spec = os.environ.get(CHAOS_ENV, "")
        if not spec:
            return None
        chaos = spec
    if isinstance(chaos, str):
        chaos = ChaosPolicy.parse(chaos)
        if chaos is None:
            return None
    if not isinstance(chaos, ChaosPolicy):
        raise TypeError(f"chaos must be a ChaosPolicy, spec string or None, got {type(chaos)!r}")
    if not chaos.enabled:
        return None
    if chaos.home_pid is None:
        chaos = chaos.with_home()
    return chaos
