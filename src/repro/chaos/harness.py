"""Self-healing task execution: deadlines, retry, quarantine.

This is the guarded execution path the campaign layers share
(``docs/DESIGN.md`` §10).  :func:`run_guarded` wraps one task
execution with:

- a **wall-clock deadline** (``SIGALRM``-based, main-thread only —
  elsewhere the deadline degrades to unbounded rather than misfiring
  into the wrong thread), turning hangs into a retryable
  :class:`TaskTimeout`;
- **bounded retry** with exponential backoff and deterministic jitter
  (keyed on the task hash, so two workers retrying different tasks
  de-synchronize without consuming any RNG that could perturb
  results);
- **quarantine**: a task that exhausts its attempts is recorded as a
  structured ``kind="quarantine"`` store record under the task's own
  content hash — the campaign completes (with a non-zero summary)
  instead of dying, resume skips the poison task, and
  ``repro store compact --drop-quarantined`` clears it for a later
  retry.

Chaos injection (:mod:`repro.chaos.policy`) happens *inside* the
guard: injected kills crash the worker at the execution site, and
injected hangs sleep inside the deadline window so ``--task-timeout``
heals them exactly as it would a real stall.

Everything here is pure control flow around ``execute`` — it never
touches solver state or RNG, so guarded records are bit-identical to
unguarded ones (the same discipline as :mod:`repro.obs`).
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.chaos.policy import CHAOS_EXIT_CODE, ChaosPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.spec import TaskSpec

__all__ = [
    "RetryPolicy",
    "TaskTimeout",
    "run_guarded",
    "quarantine_record",
    "resolve_retry",
    "QUARANTINE_SCHEMA",
]

#: Schema version stamped into ``quarantine`` store records.
QUARANTINE_SCHEMA: int = 1


class TaskTimeout(RuntimeError):
    """A task overran its wall-clock deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failing task, and how patiently.

    ``retries`` is the number of *re*-attempts (0 = one attempt, no
    retry).  ``timeout`` is the per-attempt wall-clock deadline in
    seconds (``None`` = unbounded).  Backoff before attempt ``k`` is
    ``backoff * 2**(k-1)`` capped at ``backoff_cap``, scaled by a
    deterministic jitter in ``[0.5, 1.0]`` derived from the task hash.
    ``quarantine=False`` re-raises the final error instead of writing
    a quarantine record.
    """

    retries: int = 0
    timeout: "float | None" = None
    backoff: float = 0.05
    backoff_cap: float = 2.0
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be >= 0")

    def delay(self, task_hash: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered
        deterministically so peers retrying in lockstep spread out."""
        base = min(self.backoff * (2.0 ** max(attempt - 1, 0)), self.backoff_cap)
        digest = hashlib.sha256(f"{task_hash}:{attempt}".encode()).digest()
        jitter = 0.5 + 0.5 * (digest[0] / 255.0)
        return base * jitter


def resolve_retry(
    *,
    retries: int = 0,
    task_timeout: "float | None" = None,
    backoff: float = 0.05,
) -> "RetryPolicy | None":
    """Build a :class:`RetryPolicy` from the campaign-level knobs, or
    ``None`` when every knob is at its off value — the guarded path is
    taken only when something asked for it, so default campaigns run
    the exact legacy code."""
    if retries == 0 and task_timeout is None:
        return None
    return RetryPolicy(retries=int(retries), timeout=task_timeout, backoff=backoff)


@contextmanager
def deadline(seconds: "float | None", task_hash: str):
    """Raise :class:`TaskTimeout` if the body outruns ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, which only the process
    main thread may arm; elsewhere (or without ``SIGALRM``, or with no
    deadline) the context is a no-op — callers that need hard
    deadlines run tasks on worker main threads, which every campaign
    path does.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):  # pragma: no cover - signal context
        raise TaskTimeout(
            f"task {task_hash[:16]} exceeded its {seconds:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def quarantine_record(
    task: "TaskSpec", error: BaseException, attempts: int
) -> dict:
    """The structured store record of a poison task.

    Keyed by the task's own content hash, so resume and serve mode
    treat the task as settled (no retry storm on every resume); carries
    the full task spec so ``repro report`` can say *what* was
    quarantined and a later ``repro store compact --drop-quarantined``
    can clear it for re-execution.
    """
    return {
        "hash": task.task_hash(),
        "kind": "quarantine",
        "schema": QUARANTINE_SCHEMA,
        "task": task.to_json(),
        "error": f"{type(error).__name__}: {error}",
        "attempts": int(attempts),
    }


def run_guarded(
    task: "TaskSpec",
    *,
    retry: "RetryPolicy | None" = None,
    chaos: "ChaosPolicy | None" = None,
    tracer=None,
    execute: "Callable[..., dict] | None" = None,
    **execute_kwargs,
) -> dict:
    """Execute one task under deadline / retry / chaos supervision.

    With ``retry is None`` and ``chaos is None`` this is exactly
    ``execute(task, **kwargs)`` — the campaign layers only route
    through here when some hardening knob is set.  ``tracer`` (a
    :class:`repro.obs.tracer.Tracer` or ``None``) receives ``retry`` /
    ``task-timeout`` / ``quarantine`` / ``chaos-inject`` events.

    Returns the task's result record, or — when attempts are exhausted
    and the policy quarantines — a :func:`quarantine_record`.  Without
    quarantine the final error propagates.
    """
    if execute is None:
        from repro.campaign.executor import execute_task as execute

    if retry is None and chaos is None:
        return execute(task, **execute_kwargs)

    from repro.obs.metrics import METRICS

    task_hash = task.task_hash()
    retries = retry.retries if retry is not None else 0
    timeout = retry.timeout if retry is not None else None
    last_error: "BaseException | None" = None
    for attempt in range(retries + 1):
        if attempt:
            pause = retry.delay(task_hash, attempt)
            METRICS.inc("harness.retries")
            if tracer is not None:
                tracer.emit(
                    "retry",
                    task=task_hash,
                    attempt=attempt,
                    delay_s=round(pause, 4),
                    error=f"{type(last_error).__name__}: {last_error}",
                )
            time.sleep(pause)
        try:
            if chaos is not None and chaos.should("kill", task_hash, attempt):
                _chaos_exit(tracer, "kill", task_hash, attempt)
            with deadline(timeout, task_hash):
                if chaos is not None and chaos.should("hang", task_hash, attempt):
                    if tracer is not None:
                        tracer.emit(
                            "chaos-inject", site="hang", task=task_hash,
                            attempt=attempt, hang_s=chaos.hang_s,
                        )
                    time.sleep(chaos.hang_s)
                return execute(task, **execute_kwargs)
        except TaskTimeout as exc:
            last_error = exc
            METRICS.inc("harness.timeouts")
            if tracer is not None:
                tracer.emit(
                    "task-timeout", task=task_hash,
                    attempt=attempt, timeout_s=timeout,
                )
        except Exception as exc:  # noqa: BLE001 - the retry boundary
            last_error = exc

    assert last_error is not None
    if retry is not None and retry.quarantine:
        METRICS.inc("harness.quarantined")
        if tracer is not None:
            tracer.emit(
                "quarantine", task=task_hash, attempts=retries + 1,
                error=f"{type(last_error).__name__}: {last_error}",
            )
        return quarantine_record(task, last_error, retries + 1)
    raise last_error


def _chaos_exit(tracer, site: str, task_hash: str, attempt: int) -> "None":
    """Crash the worker the way a real crash would: no cleanup, no
    exception propagation — ``os._exit``.  The tracer event is emitted
    first (JSONL sinks flush per event, so it survives)."""
    if tracer is not None:
        tracer.emit("chaos-inject", site=site, task=task_hash, attempt=attempt)
        try:
            tracer.close()
        except Exception:  # pragma: no cover - best effort
            pass
    os._exit(CHAOS_EXIT_CODE)
