"""Command-line entry point: ``python -m repro``.

Prints the library banner and forwards experiment subcommands to
:mod:`repro.sim.experiments`.
"""

from __future__ import annotations

import sys

import repro


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in ("table1", "figure1"):
        from repro.sim.experiments import _main

        return _main(argv)
    print(
        f"repro {repro.__version__} — backward + forward recovery for "
        "silent errors in iterative solvers\n"
        "(reproduction of Fasi, Robert, Uçar, PDSEC 2015)\n\n"
        "usage:\n"
        "  python -m repro table1  [--scale N] [--reps R] [--uids ...]\n"
        "  python -m repro figure1 [--scale N] [--reps R] [--uids ...]\n\n"
        "see README.md for the library API and examples/ for runnable demos"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — standard CLI etiquette.
        raise SystemExit(0)
