"""Command-line entry point: ``python -m repro``.

Prints the library banner and forwards experiment subcommands to
:mod:`repro.sim.experiments`.
"""

from __future__ import annotations

import sys

import repro


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in ("table1", "figure1"):
        from repro.sim.experiments import _main

        return _main(argv)
    if argv and argv[0] not in ("-h", "--help"):
        # A typo'd subcommand must not look like a successful run to
        # scripts; usage goes to stderr and the exit code is nonzero.
        print(f"error: unknown subcommand {argv[0]!r}", file=sys.stderr)
        print("expected 'table1' or 'figure1'; run without arguments for usage",
              file=sys.stderr)
        return 2
    print(
        f"repro {repro.__version__} — backward + forward recovery for "
        "silent errors in iterative solvers\n"
        "(reproduction of Fasi, Robert, Uçar, PDSEC 2015)\n\n"
        "usage:\n"
        "  python -m repro table1  [--scale N] [--reps R] [--uids ...]\n"
        "                          [--jobs J] [--store FILE] [--resume]\n"
        "                          [--base-seed S] [--s-span W]\n"
        "                          [--method cg,bicgstab,pcg]\n"
        "  python -m repro figure1 [--scale N] [--reps R] [--uids ...]\n"
        "                          [--jobs J] [--store FILE] [--resume]\n"
        "                          [--base-seed S] [--method ...]\n\n"
        "campaign engine: --jobs fans tasks over worker processes\n"
        "(bit-identical to serial), --store persists results to JSONL,\n"
        "--resume continues a killed campaign without recomputation,\n"
        "--method sweeps the solver axis (CG / BiCGstab / Jacobi-PCG)\n\n"
        "see README.md for the library API and examples/ for runnable demos"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — standard CLI etiquette.
        raise SystemExit(0)
