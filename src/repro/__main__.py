"""Command-line entry point: ``python -m repro``.

Same argparse subcommand tree as the installed ``repro`` console
script — see :mod:`repro.api.cli`.
"""

from __future__ import annotations

from repro.api.cli import entry, main

__all__ = ["main"]

if __name__ == "__main__":  # pragma: no cover
    entry()
