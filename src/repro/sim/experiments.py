"""Drivers for the paper's two evaluation artifacts.

Table 1 (Section 5.2, model validation)
    For each suite matrix, with ``λ = 1/(16M)`` per word (``α = 1/16``):
    sweep the checkpoint interval ``s``, measure mean execution time
    over ``reps`` runs for ABFT-DETECTION and ABFT-CORRECTION, and
    compare the empirically best interval ``s*`` with the
    model-predicted ``s̃`` (Eq. 6), reporting the loss ``l``.

Figure 1 (Section 5.2, scheme comparison)
    For each suite matrix, sweep the normalized MTBF ``1/α`` and plot
    mean execution time of ONLINE-DETECTION (intervals from Chen's
    formula), ABFT-DETECTION and ABFT-CORRECTION (intervals from the
    Eq.-6 optimum).

Both drivers take a ``scale`` divisor (see
:mod:`repro.sim.matrices`) — ``scale=1`` is the paper's full size,
larger values shrink matrices for laptop-speed sweeps while preserving
per-row density.  ``python -m repro.sim.experiments --help`` runs them
from the command line.
"""

from __future__ import annotations

import math

from repro.core.methods import CostModel, Scheme, SchemeConfig
from repro.model.chen import chen_intervals
from repro.model.instantiate import model_for_scheme
from repro.sim.engine import make_rhs, repeat_run, sweep_checkpoint_interval
from repro.sim.matrices import MatrixSpec, suite_specs
from repro.sim.results import Figure1Point, Table1Row

__all__ = ["run_table1", "run_figure1", "model_interval_for", "default_s_grid"]

#: Paper's Table-1 fault constant: λ = 1/(16 M) per word → α = 1/16.
TABLE1_ALPHA: float = 1.0 / 16.0


def model_interval_for(scheme: Scheme, alpha: float, costs: CostModel) -> tuple[int, int]:
    """Model-recommended ``(s, d)`` for a scheme at fault constant α.

    λ in the performance model is the cumulative rate per time unit,
    which equals α under the paper's normalization.  ONLINE-DETECTION
    uses Chen's closed-form intervals [9, Eq. 10-style]; the ABFT
    schemes use the exact Eq.-6 integer optimum.
    """
    lam = alpha / costs.t_iter
    if scheme is Scheme.ONLINE_DETECTION:
        ch = chen_intervals(
            costs.t_iter, lam, costs.t_cp, costs.t_verif_online, costs.t_rec
        )
        return ch.c, ch.d
    model = model_for_scheme(scheme, lam, costs)
    return model.optimal(s_max=400).s, 1


def default_s_grid(s_center: int, *, span: int = 6, s_max: int = 60) -> list[int]:
    """Interval sweep grid around the model prediction.

    Covers ``[max(1, s̃ − span), min(s_max, s̃ + span)]`` plus a few
    coarse points so a badly wrong model prediction still brackets the
    empirical optimum.
    """
    lo = max(1, s_center - span)
    hi = min(s_max, s_center + span)
    grid = set(range(lo, hi + 1))
    grid.update({1, 2, 4, 8, 16, 24, 32})
    return sorted(v for v in grid if v <= s_max)


def run_table1(
    *,
    scale: int = 16,
    reps: int = 10,
    alpha: float = TABLE1_ALPHA,
    uids: "list[int] | None" = None,
    eps: float = 1e-6,
    base_seed: int = 2015,
    s_span: int = 6,
) -> list[Table1Row]:
    """Reproduce Table 1 (both ABFT schemes); returns one row per
    (matrix, scheme)."""
    rows: list[Table1Row] = []
    for spec in suite_specs(uids):
        a = spec.instantiate(scale)
        b = make_rhs(a)
        costs = CostModel.from_matrix(a)
        for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
            s_model, _ = model_interval_for(scheme, alpha, costs)
            grid = default_s_grid(s_model, span=s_span)
            cfg = SchemeConfig(scheme, checkpoint_interval=s_model, costs=costs)
            sweep = sweep_checkpoint_interval(
                a,
                b,
                cfg,
                grid,
                alpha=alpha,
                reps=reps,
                base_seed=base_seed,
                labels=("table1", spec.uid),
                eps=eps,
            )
            s_best = min(sweep, key=lambda s: sweep[s].mean_time)
            rows.append(
                Table1Row(
                    uid=spec.uid,
                    n=a.nrows,
                    density=a.density,
                    scheme=scheme.value,
                    s_model=s_model,
                    time_model=sweep[s_model].mean_time,
                    s_best=s_best,
                    time_best=sweep[s_best].mean_time,
                    reps=reps,
                )
            )
    return rows


def run_figure1(
    *,
    scale: int = 16,
    reps: int = 10,
    mtbf_values: "list[float] | None" = None,
    uids: "list[int] | None" = None,
    eps: float = 1e-6,
    base_seed: int = 2015,
) -> list[Figure1Point]:
    """Reproduce Figure 1: execution time vs normalized MTBF, all schemes.

    ``mtbf_values`` are the x-axis points ``1/α``; the paper spans
    roughly 10²–10⁴ (default: 6 log-spaced points plus the Table-1
    point 16 for continuity with the high-rate regime).
    """
    if mtbf_values is None:
        mtbf_values = [16.0, 10**2, 10**2.5, 10**3, 10**3.5, 10**4]
    points: list[Figure1Point] = []
    for spec in suite_specs(uids):
        a = spec.instantiate(scale)
        b = make_rhs(a)
        costs = CostModel.from_matrix(a)
        for mtbf in mtbf_values:
            alpha = 1.0 / mtbf
            for scheme in (
                Scheme.ONLINE_DETECTION,
                Scheme.ABFT_DETECTION,
                Scheme.ABFT_CORRECTION,
            ):
                s, d = model_interval_for(scheme, alpha, costs)
                cfg = SchemeConfig(
                    scheme, checkpoint_interval=s, verification_interval=d, costs=costs
                )
                stats = repeat_run(
                    a,
                    b,
                    cfg,
                    alpha=alpha,
                    reps=reps,
                    base_seed=base_seed,
                    labels=("figure1", spec.uid, mtbf),
                    eps=eps,
                )
                points.append(
                    Figure1Point(
                        uid=spec.uid,
                        scheme=scheme.value,
                        alpha=alpha,
                        mean_time=stats.mean_time,
                        sem_time=stats.sem_time,
                        s_used=s,
                        d_used=d,
                    )
                )
    return points


def _main(argv: "list[str] | None" = None) -> int:
    """Command-line entry: ``python -m repro.sim.experiments ...``."""
    import argparse

    from repro.sim.results import format_figure1, format_table1, to_csv

    parser = argparse.ArgumentParser(
        prog="repro.sim.experiments",
        description="Regenerate the paper's Table 1 / Figure 1",
    )
    parser.add_argument("experiment", choices=["table1", "figure1"])
    parser.add_argument("--scale", type=int, default=16, help="matrix size divisor (1 = paper scale)")
    parser.add_argument("--reps", type=int, default=10, help="repetitions per point (paper: 50)")
    parser.add_argument("--uids", type=int, nargs="*", default=None, help="subset of matrix ids")
    parser.add_argument("--eps", type=float, default=1e-6, help="CG stopping epsilon")
    parser.add_argument("--csv", type=str, default=None, help="also dump raw rows to CSV")
    parser.add_argument("--paper-scale", action="store_true", help="scale=1, reps=50 (slow)")
    args = parser.parse_args(argv)
    if args.paper_scale:
        args.scale, args.reps = 1, 50

    if args.experiment == "table1":
        rows = run_table1(scale=args.scale, reps=args.reps, uids=args.uids, eps=args.eps)
        print(format_table1(rows))
        if args.csv:
            to_csv(rows, args.csv)
    else:
        pts = run_figure1(scale=args.scale, reps=args.reps, uids=args.uids, eps=args.eps)
        print(format_figure1(pts))
        if args.csv:
            to_csv(pts, args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
