"""Drivers for the paper's two evaluation artifacts.

Table 1 (Section 5.2, model validation)
    For each suite matrix, with ``λ = 1/(16M)`` per word (``α = 1/16``):
    sweep the checkpoint interval ``s``, measure mean execution time
    over ``reps`` runs for ABFT-DETECTION and ABFT-CORRECTION, and
    compare the empirically best interval ``s*`` with the
    model-predicted ``s̃`` (Eq. 6), reporting the loss ``l``.

Figure 1 (Section 5.2, scheme comparison)
    For each suite matrix, sweep the normalized MTBF ``1/α`` and plot
    mean execution time of ONLINE-DETECTION (intervals from Chen's
    formula), ABFT-DETECTION and ABFT-CORRECTION (intervals from the
    Eq.-6 optimum).

Both drivers take a ``scale`` divisor (see
:mod:`repro.sim.matrices`) — ``scale=1`` is the paper's full size,
larger values shrink matrices for laptop-speed sweeps while preserving
per-row density.  ``python -m repro.sim.experiments --help`` runs them
from the command line.

Execution goes through the campaign engine (:mod:`repro.campaign`):
the grid of independent (method, matrix, scheme, α, interval) points
is expanded into content-hashable tasks, fanned out over ``jobs`` worker
processes, optionally persisted to a JSONL ``store`` for crash-safe
resume, and re-aggregated into the same rows/points the old serial
loops produced.  Seeding depends only on task identity, so any
``jobs`` setting is bit-identical to ``jobs=1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.methods import CostModel, Scheme
from repro.model.chen import chen_intervals
from repro.model.instantiate import model_for_scheme

if TYPE_CHECKING:  # pragma: no cover
    import os

    from repro.campaign.store import ResultStore
    from repro.sim.results import Figure1Point, Table1Row

__all__ = [
    "run_table1",
    "run_figure1",
    "model_interval_for",
    "default_s_grid",
    "MODEL_S_MAX",
    "DEFAULT_MTBF_VALUES",
]

#: Paper's Table-1 fault constant: λ = 1/(16 M) per word → α = 1/16.
TABLE1_ALPHA: float = 1.0 / 16.0

#: Search ceiling for the Eq.-6 integer interval optimum.  Generous for
#: the paper's fault rates (optima land well under 100); large-MTBF
#: campaigns whose optimum grows past it can widen via the ``s_max``
#: parameter of :func:`model_interval_for`.
MODEL_S_MAX: int = 400

#: Figure 1's default x-axis ``1/α``: the paper spans roughly 10²–10⁴,
#: plus the Table-1 point 16 for continuity with the high-rate regime.
DEFAULT_MTBF_VALUES: tuple[float, ...] = (16.0, 10**2, 10**2.5, 10**3, 10**3.5, 10**4)


def model_interval_for(
    scheme: Scheme, alpha: float, costs: CostModel, *, s_max: int = MODEL_S_MAX
) -> tuple[int, int]:
    """Model-recommended ``(s, d)`` for a scheme at fault constant α.

    λ in the performance model is the cumulative rate per time unit,
    which equals α under the paper's normalization.  ONLINE-DETECTION
    uses Chen's closed-form intervals [9, Eq. 10-style]; the ABFT
    schemes use the exact Eq.-6 integer optimum, searched up to
    ``s_max``.
    """
    lam = alpha / costs.t_iter
    if scheme is Scheme.ONLINE_DETECTION:
        ch = chen_intervals(
            costs.t_iter, lam, costs.t_cp, costs.t_verif_online, costs.t_rec
        )
        return ch.c, ch.d
    model = model_for_scheme(scheme, lam, costs)
    return model.optimal(s_max=s_max).s, 1


def default_s_grid(s_center: int, *, span: int = 6, s_max: int = 60) -> list[int]:
    """Interval sweep grid around the model prediction.

    Covers ``[max(1, s̃ − span), min(s_max, s̃ + span)]`` plus a few
    coarse points so a badly wrong model prediction still brackets the
    empirical optimum.
    """
    lo = max(1, s_center - span)
    hi = min(s_max, s_center + span)
    grid = set(range(lo, hi + 1))
    grid.update({1, 2, 4, 8, 16, 24, 32})
    return sorted(v for v in grid if v <= s_max)


def run_table1(
    *,
    scale: int = 16,
    reps: int = 10,
    alpha: float = TABLE1_ALPHA,
    uids: "list[int] | None" = None,
    eps: float = 1e-6,
    base_seed: int = 2015,
    s_span: int = 6,
    jobs: int = 1,
    store: "ResultStore | str | os.PathLike[str] | None" = None,
    progress: bool = False,
    methods: "list[str] | None" = None,
) -> list[Table1Row]:
    """Reproduce Table 1 (both ABFT schemes); returns one row per
    (matrix, method, scheme).

    ``jobs`` fans the sweep out over worker processes (results are
    bit-identical for any value); ``store`` persists per-task records
    to a JSONL file, skipping tasks already completed there;
    ``progress`` prints a throughput/ETA line to stderr; ``methods``
    opens the solver axis (default: classic CG only).
    """
    from repro.campaign import CampaignSpec, aggregate_table1, run_campaign

    spec = CampaignSpec(
        kind="table1",
        scale=scale,
        reps=reps,
        uids=tuple(uids) if uids is not None else None,
        alpha=alpha,
        eps=eps,
        base_seed=base_seed,
        s_span=s_span,
        methods=tuple(methods) if methods is not None else ("cg",),
    )
    tasks = spec.expand()
    records = run_campaign(
        tasks, jobs=jobs, store=store, progress=_reporter(progress, tasks, "table1")
    )
    return aggregate_table1(tasks, records)


def run_figure1(
    *,
    scale: int = 16,
    reps: int = 10,
    mtbf_values: "list[float] | None" = None,
    uids: "list[int] | None" = None,
    eps: float = 1e-6,
    base_seed: int = 2015,
    jobs: int = 1,
    store: "ResultStore | str | os.PathLike[str] | None" = None,
    progress: bool = False,
    methods: "list[str] | None" = None,
) -> list[Figure1Point]:
    """Reproduce Figure 1: execution time vs normalized MTBF, all schemes.

    ``mtbf_values`` are the x-axis points ``1/α`` (default:
    :data:`DEFAULT_MTBF_VALUES`).  ``jobs`` / ``store`` / ``progress``
    / ``methods`` behave as in :func:`run_table1` (non-CG methods
    contribute only the two ABFT series — Chen's ONLINE-DETECTION is
    CG-specific).
    """
    from repro.campaign import CampaignSpec, aggregate_figure1, run_campaign

    spec = CampaignSpec(
        kind="figure1",
        scale=scale,
        reps=reps,
        uids=tuple(uids) if uids is not None else None,
        mtbf_values=tuple(mtbf_values) if mtbf_values is not None else None,
        eps=eps,
        base_seed=base_seed,
        methods=tuple(methods) if methods is not None else ("cg",),
    )
    tasks = spec.expand()
    records = run_campaign(
        tasks, jobs=jobs, store=store, progress=_reporter(progress, tasks, "figure1")
    )
    return aggregate_figure1(tasks, records)


def _reporter(enabled: bool, tasks: list, label: str):
    """Stderr progress reporter when requested, else None."""
    if not enabled:
        return None
    import sys

    from repro.campaign import ProgressReporter

    return ProgressReporter(len(tasks), stream=sys.stderr, label=label)


def _main(argv: "list[str] | None" = None) -> int:
    """Command-line entry: ``python -m repro.sim.experiments ...``."""
    import argparse

    from repro.sim.results import format_figure1, format_table1, to_csv

    parser = argparse.ArgumentParser(
        prog="repro.sim.experiments",
        description="Regenerate the paper's Table 1 / Figure 1",
    )
    parser.add_argument("experiment", choices=["table1", "figure1"])
    parser.add_argument("--scale", type=int, default=16, help="matrix size divisor (1 = paper scale)")
    parser.add_argument("--reps", type=int, default=10, help="repetitions per point (paper: 50)")
    parser.add_argument("--uids", type=int, nargs="*", default=None, help="subset of matrix ids")
    parser.add_argument("--eps", type=float, default=1e-6, help="CG stopping epsilon")
    parser.add_argument("--base-seed", type=int, default=2015, help="campaign base seed")
    parser.add_argument(
        "--s-span", type=int, default=6,
        help="(table1) interval-sweep half-width around the model prediction",
    )
    parser.add_argument(
        "--method", type=str, default="cg", metavar="M1,M2,...",
        help="comma-separated solver axis: cg, bicgstab, pcg (default: cg)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--store", type=str, default=None,
        help="JSONL result store for crash-safe persistence / resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse finished tasks from --store instead of starting fresh",
    )
    parser.add_argument("--csv", type=str, default=None, help="also dump raw rows to CSV")
    parser.add_argument("--paper-scale", action="store_true", help="scale=1, reps=50 (slow)")
    args = parser.parse_args(argv)
    if args.paper_scale:
        args.scale, args.reps = 1, 50

    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.s_span < 0:
        parser.error(f"--s-span must be >= 0, got {args.s_span}")
    from repro.core.methods import Method

    try:
        methods = [Method.parse(m).value for m in args.method.split(",") if m.strip()]
    except ValueError as exc:
        parser.error(str(exc))
    if not methods:
        parser.error("--method must name at least one solver")
    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.store and not args.resume:
        import pathlib

        p = pathlib.Path(args.store)
        if p.exists() and p.stat().st_size > 0:
            parser.error(
                f"store {args.store!r} already has results; "
                "pass --resume to continue it or remove the file to start fresh"
            )

    from repro.campaign import default_jobs

    jobs = default_jobs() if args.jobs is None else args.jobs
    common = dict(
        scale=args.scale,
        reps=args.reps,
        uids=args.uids,
        eps=args.eps,
        base_seed=args.base_seed,
        jobs=jobs,
        store=args.store,
        progress=True,
        methods=methods,
    )
    if args.experiment == "table1":
        rows = run_table1(s_span=args.s_span, **common)
        print(format_table1(rows))
        if args.csv:
            to_csv(rows, args.csv)
    else:
        pts = run_figure1(**common)
        print(format_figure1(pts))
        if args.csv:
            to_csv(pts, args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
