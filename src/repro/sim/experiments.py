"""Drivers for the paper's two evaluation artifacts.

Table 1 (Section 5.2, model validation)
    For each suite matrix, with ``λ = 1/(16M)`` per word (``α = 1/16``):
    sweep the checkpoint interval ``s``, measure mean execution time
    over ``reps`` runs for ABFT-DETECTION and ABFT-CORRECTION, and
    compare the empirically best interval ``s*`` with the
    model-predicted ``s̃`` (Eq. 6), reporting the loss ``l``.

Figure 1 (Section 5.2, scheme comparison)
    For each suite matrix, sweep the normalized MTBF ``1/α`` and plot
    mean execution time of ONLINE-DETECTION (intervals from Chen's
    formula), ABFT-DETECTION and ABFT-CORRECTION (intervals from the
    Eq.-6 optimum).

Both drivers take a ``scale`` divisor (see
:mod:`repro.sim.matrices`) — ``scale=1`` is the paper's full size,
larger values shrink matrices for laptop-speed sweeps while preserving
per-row density.  ``python -m repro.sim.experiments --help`` runs them
from the command line.

Both drivers are thin :class:`repro.api.study.Study` definitions: the
preset ``Study.table1()`` / ``Study.figure1()`` grids expand to the
same content-hashable tasks the serial loops used to iterate, execute
through the campaign engine (``jobs`` fan-out, JSONL ``store``,
resume), and aggregate back into the same rows/points.  Seeding
depends only on task identity, so any ``jobs`` setting is
bit-identical to ``jobs=1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.methods import CostModel, Scheme
from repro.model.chen import chen_intervals
from repro.model.instantiate import model_for_scheme

if TYPE_CHECKING:  # pragma: no cover
    import os

    from repro.store.protocol import StoreBackend
    from repro.sim.results import Figure1Point, Table1Row

__all__ = [
    "run_table1",
    "run_figure1",
    "model_interval_for",
    "resolve_intervals",
    "default_s_grid",
    "MODEL_S_MAX",
    "DEFAULT_MTBF_VALUES",
]

#: Paper's Table-1 fault constant: λ = 1/(16 M) per word → α = 1/16.
TABLE1_ALPHA: float = 1.0 / 16.0

#: Search ceiling for the Eq.-6 integer interval optimum.  Generous for
#: the paper's fault rates (optima land well under 100); large-MTBF
#: campaigns whose optimum grows past it can widen via the ``s_max``
#: parameter of :func:`model_interval_for`.
MODEL_S_MAX: int = 400

#: Figure 1's default x-axis ``1/α``: the paper spans roughly 10²–10⁴,
#: plus the Table-1 point 16 for continuity with the high-rate regime.
DEFAULT_MTBF_VALUES: tuple[float, ...] = (16.0, 10**2, 10**2.5, 10**3, 10**3.5, 10**4)


def model_interval_for(
    scheme: Scheme, alpha: float, costs: CostModel, *, s_max: int = MODEL_S_MAX
) -> tuple[int, int]:
    """Model-recommended ``(s, d)`` for a scheme at fault constant α.

    λ in the performance model is the cumulative rate per time unit,
    which equals α under the paper's normalization.  ONLINE-DETECTION
    uses Chen's closed-form intervals [9, Eq. 10-style]; the ABFT
    schemes use the exact Eq.-6 integer optimum, searched up to
    ``s_max``.
    """
    lam = alpha / costs.t_iter
    if scheme is Scheme.ONLINE_DETECTION:
        ch = chen_intervals(
            costs.t_iter, lam, costs.t_cp, costs.t_verif_online, costs.t_rec
        )
        return ch.c, ch.d
    model = model_for_scheme(scheme, lam, costs)
    return model.optimal(s_max=s_max).s, 1


def resolve_intervals(
    scheme: Scheme,
    alpha: float,
    costs,
    *,
    s: "int | str" = "auto",
    d: "int | str" = "auto",
    s_max: int = MODEL_S_MAX,
    default_s: int = 10,
    recommend: bool = False,
) -> "tuple[int, int, int | None]":
    """Resolve ``"auto"`` checkpoint/verification intervals for one run.

    The single statement of the auto-interval policy shared by
    :func:`repro.api.solve` and :class:`repro.api.study.Study`:
    ``s="auto"`` takes the Eq.-6/Chen model optimum (``default_s`` when
    injection is off and the model is moot); ``d="auto"`` takes Chen's
    value for ONLINE-DETECTION and 1 for the ABFT schemes.

    Returns ``(s, d, s_model)`` with ``s_model`` the model's
    recommendation.  The model is only evaluated when an interval
    actually needs it (or ``recommend`` forces it for reporting) and
    ``alpha > 0`` — otherwise ``s_model`` is ``None``.  ``costs`` may
    be a :class:`~repro.core.methods.CostModel` or a zero-argument
    callable producing one, evaluated only if the model runs (so
    callers can defer a matrix build that pinned intervals never need).
    """
    needs_model = (
        recommend or s == "auto" or (d == "auto" and scheme is Scheme.ONLINE_DETECTION)
    )
    rec_s: "int | None" = None
    rec_d: "int | None" = None
    if alpha > 0 and needs_model:
        if callable(costs):
            costs = costs()
        rec_s, rec_d = model_interval_for(scheme, alpha, costs, s_max=s_max)
    out_s = s if isinstance(s, int) else (rec_s if rec_s is not None else default_s)
    if isinstance(d, int):
        out_d = d
    elif scheme is Scheme.ONLINE_DETECTION and rec_d is not None:
        out_d = rec_d
    else:
        out_d = 1
    return out_s, out_d, rec_s


def default_s_grid(s_center: int, *, span: int = 6, s_max: int = 60) -> list[int]:
    """Interval sweep grid around the model prediction.

    Covers ``[max(1, s̃ − span), min(s_max, s̃ + span)]`` plus a few
    coarse points so a badly wrong model prediction still brackets the
    empirical optimum.
    """
    lo = max(1, s_center - span)
    hi = min(s_max, s_center + span)
    grid = set(range(lo, hi + 1))
    grid.update({1, 2, 4, 8, 16, 24, 32})
    return sorted(v for v in grid if v <= s_max)


def run_table1(
    *,
    scale: int = 16,
    reps: int = 10,
    alpha: float = TABLE1_ALPHA,
    uids: "list[int] | None" = None,
    eps: float = 1e-6,
    base_seed: int = 2015,
    s_span: int = 6,
    jobs: int = 1,
    store: "StoreBackend | str | os.PathLike[str] | None" = None,
    progress: "bool | str" = False,
    methods: "list[str] | None" = None,
    backend: str = "reference",
    trace_dir: "str | os.PathLike[str] | None" = None,
    task_timeout: "float | None" = None,
    retries: int = 0,
    chaos=None,
    sampling: str = "",
) -> list[Table1Row]:
    """Reproduce Table 1 (both ABFT schemes); returns one row per
    (matrix, method, scheme).

    ``jobs`` fans the sweep out over worker processes (results are
    bit-identical for any value); ``store`` persists per-task records
    — a bare path for single-file JSONL, ``sharded:dir`` /
    ``sqlite:file.db`` for the concurrent backends
    (:mod:`repro.store`) — skipping tasks already completed there;
    ``progress`` prints a throughput/ETA line to stderr (``True`` /
    ``"bar"`` for the status line, ``"json"`` for newline-delimited
    JSON objects); ``methods`` opens the solver axis (default: classic
    CG only); ``backend`` selects the kernel backend every task runs on
    (:mod:`repro.backends` — the default reference backend is the
    bit-identity oracle the golden fixtures lock); ``trace_dir``
    collects per-worker JSONL trace shards (:mod:`repro.obs`);
    ``task_timeout`` / ``retries`` / ``chaos`` are the self-healing
    and fault-injection knobs of the campaign executor
    (``docs/DESIGN.md`` §10) — note a quarantined task leaves its
    sweep group incomplete, which this full aggregation reports as an
    error naming the poison task; ``sampling`` switches every task to
    adaptive sequential sampling (``docs/DESIGN.md`` §11) — a policy
    spec like ``"ci=0.05,conf=0.95,min=5,max=200"``, under which
    ``reps`` is ignored in favour of the policy's rep cap.
    """
    from repro.api.study import Study

    study = Study.table1(
        scale=scale,
        reps=reps,
        alpha=alpha,
        uids=uids,
        eps=eps,
        base_seed=base_seed,
        s_span=s_span,
        methods=methods,
        backend=backend,
        sampling=sampling,
    )
    return _run_study(
        study, jobs, store, progress, trace_dir, task_timeout, retries, chaos
    ).table1_rows()


def run_figure1(
    *,
    scale: int = 16,
    reps: int = 10,
    mtbf_values: "list[float] | None" = None,
    uids: "list[int] | None" = None,
    eps: float = 1e-6,
    base_seed: int = 2015,
    jobs: int = 1,
    store: "StoreBackend | str | os.PathLike[str] | None" = None,
    progress: "bool | str" = False,
    methods: "list[str] | None" = None,
    backend: str = "reference",
    trace_dir: "str | os.PathLike[str] | None" = None,
    task_timeout: "float | None" = None,
    retries: int = 0,
    chaos=None,
    sampling: str = "",
) -> list[Figure1Point]:
    """Reproduce Figure 1: execution time vs normalized MTBF, all schemes.

    ``mtbf_values`` are the x-axis points ``1/α`` (default:
    :data:`DEFAULT_MTBF_VALUES`).  ``jobs`` / ``store`` / ``progress``
    / ``methods`` / ``backend`` / ``trace_dir`` / ``sampling`` behave
    as in :func:`run_table1` (non-CG methods contribute only the two
    ABFT series — Chen's ONLINE-DETECTION is CG-specific).
    """
    from repro.api.study import Study

    study = Study.figure1(
        scale=scale,
        reps=reps,
        mtbf_values=mtbf_values,
        uids=uids,
        eps=eps,
        base_seed=base_seed,
        methods=methods,
        backend=backend,
        sampling=sampling,
    )
    return _run_study(
        study, jobs, store, progress, trace_dir, task_timeout, retries, chaos
    ).figure1_points()


def _run_study(
    study, jobs, store, progress, trace_dir=None,
    task_timeout=None, retries=0, chaos=None,
):
    """Execute a preset study with the drivers' store/progress plumbing.

    Accepts a pre-built store backend as well as a path or selector
    URL (the drivers' historical contract, extended by
    :mod:`repro.store`), which :meth:`Study.run` forwards to the
    campaign executor untouched.
    ``progress`` may be a mode string (``"bar"``/``"json"``/``"none"``)
    as well as the historical bool.
    """
    return study.run(
        jobs=jobs,
        store=store,
        progress=progress,
        trace_dir=trace_dir,
        task_timeout=task_timeout,
        retries=retries,
        chaos=chaos,
    )


def _main(argv: "list[str] | None" = None) -> int:
    """Command-line entry: ``python -m repro.sim.experiments ...``.

    Kept as a back-compat alias of the ``repro`` subcommand CLI
    (:mod:`repro.api.cli`): ``table1``/``figure1`` plus their flags
    parse identically there.
    """
    from repro.api.cli import main

    return main(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
