"""Experiment harness reproducing the paper's evaluation (Section 5).

- :mod:`repro.sim.matrices` — the nine-matrix SPD suite matching the
  paper's UFL ids, sizes and densities (synthetic substitution; see
  ``docs/DESIGN.md`` §2), plus the ``REPRO_MATRIX_DIR`` registry that
  swaps in real Matrix-Market workloads when present;
- :mod:`repro.sim.engine` — repeated fault-injected runs with
  deterministic per-repetition seeding and aggregation;
- :mod:`repro.sim.experiments` — drivers for Table 1 (model
  validation) and Figure 1 (time vs normalized MTBF), executing
  through the :mod:`repro.campaign` engine (parallel ``jobs``,
  persistent ``store``, resume);
- :mod:`repro.sim.results` — result containers and paper-style text
  rendering.
"""

from repro.sim.matrices import (
    MatrixSpec,
    PAPER_SUITE,
    MATRIX_DIR_ENV,
    get_matrix,
    clear_matrix_cache,
    matrix_source,
    suite_specs,
    workload_registry,
)
from repro.sim.engine import RunStatistics, repeat_run, sweep_checkpoint_interval
from repro.sim.results import Table1Row, Figure1Point, format_table1, format_figure1
from repro.sim.experiments import run_table1, run_figure1

__all__ = [
    "MatrixSpec",
    "PAPER_SUITE",
    "MATRIX_DIR_ENV",
    "workload_registry",
    "matrix_source",
    "get_matrix",
    "clear_matrix_cache",
    "suite_specs",
    "RunStatistics",
    "repeat_run",
    "sweep_checkpoint_interval",
    "Table1Row",
    "Figure1Point",
    "format_table1",
    "format_figure1",
    "run_table1",
    "run_figure1",
]
