"""Result containers and paper-style rendering.

The formatters print the same rows/series the paper reports: Table 1's
``(id, n, density, s̃, Et(s̃), s*, Et(s*), l)`` per scheme, and Figure
1's per-matrix time-vs-MTBF series (rendered as aligned text columns —
this library has no plotting dependency, but the CSV output drops
straight into any plotting tool).
"""

from __future__ import annotations

import io
from dataclasses import dataclass

__all__ = [
    "Table1Row",
    "Figure1Point",
    "format_table1",
    "format_figure1",
    "ascii_panel",
    "to_csv",
]


@dataclass(frozen=True)
class Table1Row:
    """One matrix's model-validation results for one (method, scheme)."""

    uid: int
    n: int
    density: float
    scheme: str
    s_model: int  #: s̃ — model-predicted interval
    time_model: float  #: Et(s̃) — measured mean time at s̃
    s_best: int  #: s* — empirically best interval
    time_best: float  #: Et(s*) — measured mean time at s*
    reps: int  #: repetitions per sweep point (the cap, for adaptive runs)
    method: str = "cg"  #: solver axis (Method value string)
    ci_low: "float | None" = None  #: CI lower bound on Et(s̃) (None: unknown)
    ci_high: "float | None" = None  #: CI upper bound on Et(s̃)
    reps_used: int = 0  #: total repetitions actually executed across the sweep
    reps_cap: int = 0  #: total repetition budget across the sweep (0: unknown)

    @property
    def loss_percent(self) -> float:
        """``l = (Et(s̃) − Et(s*)) / Et(s*) · 100`` — the paper's loss metric."""
        if self.time_best == 0:
            return 0.0
        return (self.time_model - self.time_best) / self.time_best * 100.0


@dataclass(frozen=True)
class Figure1Point:
    """One point of one (method, scheme) series in one Figure-1 panel."""

    uid: int
    scheme: str
    alpha: float  #: fault-rate constant; x-axis is 1/alpha
    mean_time: float
    sem_time: "float | None"  #: standard error of the mean; None when reps < 2
    s_used: int
    d_used: int
    method: str = "cg"  #: solver axis (Method value string)
    ci_low: "float | None" = None  #: CI lower bound on mean_time (None: unknown)
    ci_high: "float | None" = None  #: CI upper bound on mean_time
    reps_used: int = 0  #: repetitions actually executed (0: unknown/legacy)
    reps_cap: int = 0  #: repetition budget of the task (0: unknown/legacy)

    @property
    def normalized_mtbf(self) -> float:
        """The paper's x-axis: 1/α."""
        return 1.0 / self.alpha


def _ordered_methods(items) -> "list[str]":
    """Distinct method names in first-appearance order."""
    out: list[str] = []
    for it in items:
        if it.method not in out:
            out.append(it.method)
    return out


def format_table1(rows: "list[Table1Row]") -> str:
    """Render Table 1 in the paper's layout (two schemes side by side).

    Rows must come in (uid, scheme) pairs covering 'abft-detection' and
    'abft-correction'; missing halves render as blanks.  Multi-method
    campaigns render one block per method; a single-method (classic)
    campaign keeps the paper's exact layout.
    """
    methods = _ordered_methods(rows)
    buf = io.StringIO()
    for method in methods:
        if len(methods) > 1:
            buf.write(f"method: {method}\n")
        _format_table1_block(buf, [r for r in rows if r.method == method])
        if len(methods) > 1:
            buf.write("\n")
    return buf.getvalue()


def _format_table1_block(buf: io.StringIO, rows: "list[Table1Row]") -> None:
    by_uid: dict[int, dict[str, Table1Row]] = {}
    for r in rows:
        by_uid.setdefault(r.uid, {})[r.scheme] = r
    # Rows carrying CI bounds grow two trailing columns (the CI
    # half-width on Et(s̃) per scheme); legacy rows keep the paper's
    # exact layout.
    with_ci = any(r.ci_low is not None for r in rows)
    head = (
        f"{'id':>6} {'n':>7} {'density':>9} | "
        f"{'s~1':>4} {'Et(s~1)':>9} {'s*1':>4} {'Et(s*1)':>9} {'l1%':>7} | "
        f"{'s~2':>4} {'Et(s~2)':>9} {'s*2':>4} {'Et(s*2)':>9} {'l2%':>7}"
    )
    if with_ci:
        head += f" | {'±1':>7} {'±2':>7}"
    buf.write(head + "\n")
    buf.write("-" * len(head) + "\n")
    for uid in sorted(by_uid):
        pair = by_uid[uid]
        det = pair.get("abft-detection")
        cor = pair.get("abft-correction")
        meta = det or cor
        assert meta is not None
        buf.write(f"{uid:>6} {meta.n:>7} {meta.density:>9.2e} | ")
        for r in (det, cor):
            if r is None:
                buf.write(f"{'-':>4} {'-':>9} {'-':>4} {'-':>9} {'-':>7}")
            else:
                buf.write(
                    f"{r.s_model:>4} {r.time_model:>9.2f} "
                    f"{r.s_best:>4} {r.time_best:>9.2f} {r.loss_percent:>7.2f}"
                )
            buf.write(" | " if r is det else "")
        if with_ci:
            buf.write(" |")
            for r in (det, cor):
                if r is None or r.ci_low is None:
                    buf.write(f" {'n/a':>7}")
                else:
                    buf.write(f" {(r.ci_high - r.ci_low) / 2.0:>7.2f}")
        buf.write("\n")
    used = sum(r.reps_used for r in rows)
    cap = sum(r.reps_cap for r in rows)
    if cap > used:
        buf.write(
            f"adaptive sampling: {used}/{cap} reps executed "
            f"(saved {cap - used}, {100.0 * (cap - used) / cap:.1f}%)\n"
        )


def format_figure1(points: "list[Figure1Point]") -> str:
    """Render Figure 1's series as one text block per matrix panel.

    Multi-method campaigns label each series ``method:scheme``; a
    single-method (classic) campaign keeps the paper's scheme-only
    column labels.
    """
    multi = len(_ordered_methods(points)) > 1

    def label(p: Figure1Point) -> str:
        return f"{p.method}:{p.scheme}" if multi else p.scheme

    by_uid: dict[int, list[Figure1Point]] = {}
    for p in points:
        by_uid.setdefault(p.uid, []).append(p)
    buf = io.StringIO()
    for uid in sorted(by_uid):
        pts = by_uid[uid]
        series = sorted({label(p) for p in pts})
        width = max(18, *(len(s) for s in series))
        mtbfs = sorted({p.normalized_mtbf for p in pts})
        with_ci = any(p.ci_low is not None for p in pts)
        buf.write(f"Matrix #{uid} — execution time (Titer units) vs normalized MTBF (1/alpha)")
        if with_ci:
            buf.write("; ± is the CI half-width")
        buf.write("\n")
        buf.write(f"{'1/alpha':>10} " + " ".join(f"{s:>{width}}" for s in series) + "\n")
        lookup = {(p.normalized_mtbf, label(p)): p for p in pts}
        for m in mtbfs:
            buf.write(f"{m:>10.0f} ")
            for s in series:
                p = lookup.get((m, s))
                if p:
                    # Error term: CI half-width when the point carries
                    # bounds, else the legacy standard error; a lone
                    # repetition has neither and renders "±n/a" (a
                    # numeric 0.0 would claim zero uncertainty).
                    if p.ci_low is not None:
                        err = (p.ci_high - p.ci_low) / 2.0
                    else:
                        err = p.sem_time
                    if err is None:
                        cell = f"{p.mean_time:>12.1f}±{'n/a':<5}"
                    else:
                        cell = f"{p.mean_time:>12.1f}±{err:<5.1f}"
                    buf.write(f"{cell:>{width}}")
                else:
                    buf.write(f"{'-':>{width}}")
                buf.write(" ")
            buf.write("\n")
        used = sum(p.reps_used for p in pts)
        cap = sum(p.reps_cap for p in pts)
        if cap > used:
            buf.write(
                f"adaptive sampling: {used}/{cap} reps executed "
                f"(saved {cap - used}, {100.0 * (cap - used) / cap:.1f}%)\n"
            )
        buf.write("\n")
    return buf.getvalue()


def ascii_panel(
    points: "list[Figure1Point]",
    uid: int,
    *,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render one Figure-1 panel as an ASCII plot (log-x, linear-y).

    Series markers follow the paper's line styles: ``:`` for
    ONLINE-DETECTION (dotted), ``-`` for ABFT-DETECTION (dashed),
    ``#`` for ABFT-CORRECTION (solid).
    """
    import math

    pts = [p for p in points if p.uid == uid]
    if not pts:
        raise ValueError(f"no points for matrix {uid}")
    markers = {"online-detection": ":", "abft-detection": "-", "abft-correction": "#"}
    xs = sorted({p.normalized_mtbf for p in pts})
    ymin = min(p.mean_time for p in pts)
    ymax = max(p.mean_time for p in pts)
    span = (ymax - ymin) or 1.0
    lx = [math.log10(x) for x in xs]
    lx_min, lx_max = lx[0], lx[-1]
    lspan = (lx_max - lx_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for p in pts:
        col = int((math.log10(p.normalized_mtbf) - lx_min) / lspan * (width - 1))
        row = int((1.0 - (p.mean_time - ymin) / span) * (height - 1))
        grid[row][col] = markers.get(p.scheme, "?")
    lines = [f"Matrix #{uid}  (y: {ymin:.0f}..{ymax:.0f} Titer units; x: 1/alpha, log)"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {xs[0]:<10.0f}{' ' * max(0, width - 22)}{xs[-1]:>10.0f}"
    )
    lines.append(" legend: ':' online-detection  '-' abft-detection  '#' abft-correction")
    return "\n".join(lines) + "\n"


def to_csv(points: "list", path: str) -> None:
    """Dump any dataclass list as CSV (column order = field order)."""
    import csv
    import dataclasses

    if not points:
        raise ValueError("nothing to write")
    fields = [f.name for f in dataclasses.fields(points[0])]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fields)
        for p in points:
            writer.writerow([getattr(p, f) for f in fields])
