"""Repeated fault-injected runs and their aggregation.

The experiment drivers need, for many (method, matrix, scheme, α,
interval) tuples, the mean execution time over ``reps`` independent
runs.  Each repetition derives its RNG deterministically from
``(base_seed, [method,] scheme, α, labels…, rep)`` so any single point
of any table can be re-run in isolation and reproduce exactly.  For
``method="cg"`` the derivation tuple omits the method name — verbatim
what the drivers used before the solver axis existed — so historical
campaigns stay bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.adaptive import SamplingPolicy, Welford, ci_bounds
from repro.sparse.csr import CSRMatrix
from repro.core.methods import Method, SchemeConfig
from repro.resilience.registry import run_ft_method
from repro.util.rng import spawn_named

__all__ = [
    "RunStatistics",
    "repeat_run",
    "repeat_run_batched",
    "sweep_checkpoint_interval",
    "make_rhs",
    "PER_REP_KEYS",
]

#: Keys of the per-repetition payload dict shared by :func:`repeat_run`
#: (via ``per_rep=``), :func:`repeat_run_batched` and the campaign
#: partial-progress records: parallel lists, one entry per repetition,
#: in repetition order.  Because the values are plain ints/floats/bools
#: they JSON round-trip exactly, so a resumed run continues from a
#: partial record bit-identically.
PER_REP_KEYS = (
    "times",
    "iterations",
    "rollbacks",
    "corrections",
    "faults",
    "converged",
)

#: Confidence level used for the CI reported on fixed-count runs
#: (adaptive runs use their policy's confidence instead).
DEFAULT_CONFIDENCE = 0.95


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of repeated runs at one parameter point."""

    mean_time: float  #: mean simulated execution time (units of Titer)
    std_time: float
    min_time: float
    max_time: float
    mean_iterations: float  #: mean executed iterations
    mean_rollbacks: float
    mean_corrections: float
    mean_faults: float
    convergence_rate: float  #: fraction of reps that converged
    reps: int
    #: Student-t CI bounds on ``mean_time`` at ``confidence`` (None when
    #: ``reps < 2`` or when rehydrating records from before the adaptive
    #: layer existed).
    ci_low: "float | None" = None
    ci_high: "float | None" = None
    confidence: "float | None" = None

    @property
    def sem_time(self) -> float:
        """Standard error of the mean time."""
        return self.std_time / math.sqrt(self.reps) if self.reps > 1 else 0.0


def make_rhs(a: CSRMatrix, seed: int = 1234) -> np.ndarray:
    """Deterministic generic right-hand side for experiment runs.

    A fixed random vector, *not* ``A·1``: several generators make the
    all-ones vector an exact eigenvector, which would let CG converge in
    one step and void the experiment.
    """
    rng = np.random.default_rng(seed)
    return rng.standard_normal(a.nrows)


def _new_payload() -> dict:
    """Fresh per-repetition payload (parallel lists, see PER_REP_KEYS)."""
    return {k: [] for k in PER_REP_KEYS}


def _copy_payload(prior: dict) -> dict:
    """Validated copy of a prior payload (e.g. a store partial record)."""
    payload = {}
    lengths = set()
    for key in PER_REP_KEYS:
        if key not in prior:
            raise ValueError(f"per-rep payload missing key {key!r}")
        payload[key] = list(prior[key])
        lengths.add(len(payload[key]))
    if len(lengths) > 1:
        raise ValueError(f"per-rep payload lists have unequal lengths {lengths}")
    return payload


def _push_rep(payload: dict, res) -> None:
    """Append one solve result to the per-rep payload lists."""
    payload["times"].append(res.time_units)
    payload["iterations"].append(res.iterations_executed)
    payload["rollbacks"].append(res.counters.rollbacks)
    payload["corrections"].append(res.counters.total_corrections)
    payload["faults"].append(res.counters.faults_injected)
    payload["converged"].append(res.converged)


def _aggregate(payload: dict, confidence: float) -> RunStatistics:
    """Fold a per-rep payload into RunStatistics.

    This is the single aggregation path for both fixed-count and
    adaptive runs: an adaptive run that stopped at k reps aggregates
    exactly like a fixed ``reps=k`` run (same numpy reductions in the
    same order), so the two produce identical statistics by
    construction.
    """
    reps = len(payload["times"])
    t = np.asarray(payload["times"])
    mean = float(t.mean())
    std = float(t.std(ddof=1)) if reps > 1 else 0.0
    ci = ci_bounds(mean, std, reps, confidence)
    return RunStatistics(
        mean_time=mean,
        std_time=std,
        min_time=float(t.min()),
        max_time=float(t.max()),
        mean_iterations=float(np.mean(payload["iterations"])),
        mean_rollbacks=float(np.mean(payload["rollbacks"])),
        mean_corrections=float(np.mean(payload["corrections"])),
        mean_faults=float(np.mean(payload["faults"])),
        convergence_rate=float(np.mean(payload["converged"])),
        reps=reps,
        ci_low=ci[0] if ci else None,
        ci_high=ci[1] if ci else None,
        confidence=confidence,
    )


def repeat_run(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float,
    reps: int,
    base_seed: int = 0,
    labels: tuple = (),
    eps: float = 1e-6,
    maxiter: int | None = None,
    max_time_units: float | None = None,
    method: "Method | str" = Method.CG,
    reuse_workspace: bool = True,
    workspace: "object | None" = None,
    backend: "str | object | None" = None,
    tracer: "object | None" = None,
    per_rep: "dict | None" = None,
) -> RunStatistics:
    """Run ``reps`` independent fault-injected solves and aggregate.

    ``labels`` extends the seed-derivation tuple (matrix id, scheme …)
    so distinct experiment points never share fault streams;
    ``method`` selects the protected solver (the resilience engine's
    recurrence plugin) and, when it is not CG, additionally enters the
    seed tuple so methods never share fault streams either.

    ``backend`` selects the kernel backend (:mod:`repro.backends`;
    ``None`` = reference).  It deliberately does *not* enter the seed
    tuple: the same parameter point on two backends faces the same
    strike sequence, which is exactly what a backend comparison wants
    (campaign stores still keep them apart — the backend is part of
    the task content hash).

    ``reuse_workspace`` (default on) runs every repetition through one
    :class:`repro.perf.SolveWorkspace`: the live matrix, the solver
    buffers and the checkpoint staging are allocated once and restored
    between repetitions by strike-undo, and the ABFT checksums come
    from the per-process cache — identical results, a fraction of the
    wall clock.  Pass ``reuse_workspace=False`` for the historical
    fresh-allocation path (the bit-identity oracle), or ``workspace=``
    to share a caller-owned workspace across calls (e.g. an interval
    sweep over one matrix).

    Staleness caveat: the checksum cache keys on the matrix *object*.
    If you mutate ``a``'s arrays in place between calls, pass a fresh
    object or call :func:`repro.perf.clear_caches` first — otherwise
    the cached ABFT metadata describes the old values.

    ``tracer`` forwards a :class:`repro.obs.Tracer` to every
    repetition's solve; the repetition index is bound into the tracer's
    event context as ``"rep"`` for the duration of its run, so shard
    files can be regrouped per repetition.  Tracing is pure observation
    and cannot change trajectories (``None`` = off, the default).

    ``per_rep``, when given an empty dict, is filled with the
    per-repetition payload lists (see :data:`PER_REP_KEYS`) — the raw
    material the adaptive layer's prefix-sharing guarantees are stated
    (and golden-locked) against.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    method = Method.parse(method)
    from repro.obs.tracer import resolve_tracer

    tr = resolve_tracer(tracer)
    ws = workspace
    if ws is None and reuse_workspace:
        from repro.perf import SolveWorkspace

        ws = SolveWorkspace()
    payload = _new_payload()
    try:
        for rep in range(reps):
            if tr is not None:
                tr.context["rep"] = rep
            res = run_ft_method(
                method,
                a,
                b,
                config,
                alpha=alpha,
                eps=eps,
                maxiter=maxiter,
                rng=_rep_rng(base_seed, method, config, alpha, labels, rep),
                max_time_units=max_time_units,
                workspace=ws,
                backend=backend,
                tracer=tr,
            )
            _push_rep(payload, res)
    finally:
        if tr is not None:
            tr.context.pop("rep", None)
    if per_rep is not None:
        per_rep.update(payload)
    return _aggregate(payload, DEFAULT_CONFIDENCE)


def _rep_rng(base_seed, method, config, alpha, labels, rep):
    """Per-repetition RNG.  The derivation tuple is the seeding invariant:
    it must never grow a sampling-policy component (docs/DESIGN.md §11) —
    adaptive and fixed-count runs share fault streams prefix-wise only
    because the tuple is identical for both."""
    if method is Method.CG:
        return spawn_named(base_seed, config.scheme.value, alpha, *labels, rep)
    return spawn_named(
        base_seed, method.value, config.scheme.value, alpha, *labels, rep
    )


def repeat_run_batched(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float,
    policy: SamplingPolicy,
    base_seed: int = 0,
    labels: tuple = (),
    eps: float = 1e-6,
    maxiter: int | None = None,
    max_time_units: float | None = None,
    method: "Method | str" = Method.CG,
    reuse_workspace: bool = True,
    workspace: "object | None" = None,
    backend: "str | object | None" = None,
    tracer: "object | None" = None,
    prior: "dict | None" = None,
    on_batch=None,
    per_rep: "dict | None" = None,
) -> RunStatistics:
    """Adaptive variant of :func:`repeat_run`: stop when the CI is tight.

    Runs repetitions sequentially until ``policy`` (a
    :class:`repro.adaptive.SamplingPolicy`) says the Student-t CI
    half-width on the mean time is below target, but never fewer than
    ``policy.min_reps`` nor more than ``policy.max_reps`` repetitions.
    The stopping rule is evaluated after every repetition on a
    :class:`repro.adaptive.Welford` accumulator.

    Repetition ``rep`` uses the *same* seed derivation as
    :func:`repeat_run` — the sampling policy is task identity, not seed
    material — so stopping at ``k`` reps reproduces the first ``k``
    repetitions of a fixed ``reps=k`` run bit-for-bit.

    ``prior`` resumes from a per-rep payload (see :data:`PER_REP_KEYS`)
    recovered from a partial-progress record: already-completed
    repetitions are folded into the accumulator and *not* re-executed.
    ``on_batch(payload)`` is invoked after every ``policy.batch``
    newly-executed repetitions (the executor uses it to flush partial
    records); ``per_rep`` works as in :func:`repeat_run`.

    The final statistics go through the same aggregation fold as the
    fixed path, with the CI reported at ``policy.confidence``.
    """
    method = Method.parse(method)
    from repro.obs.metrics import METRICS
    from repro.obs.tracer import resolve_tracer

    tr = resolve_tracer(tracer)
    ws = workspace
    if ws is None and reuse_workspace:
        from repro.perf import SolveWorkspace

        ws = SolveWorkspace()
    payload = _copy_payload(prior) if prior else _new_payload()
    acc = Welford(payload["times"])
    start = acc.n
    if start:
        METRICS.inc("adaptive.reps_resumed", start)
    executed = 0
    try:
        while not policy.should_stop(acc.n, acc.mean, acc.std):
            rep = acc.n
            if tr is not None:
                tr.context["rep"] = rep
            res = run_ft_method(
                method,
                a,
                b,
                config,
                alpha=alpha,
                eps=eps,
                maxiter=maxiter,
                rng=_rep_rng(base_seed, method, config, alpha, labels, rep),
                max_time_units=max_time_units,
                workspace=ws,
                backend=backend,
                tracer=tr,
            )
            _push_rep(payload, res)
            acc.push(res.time_units)
            executed += 1
            METRICS.inc("adaptive.reps")
            if on_batch is not None and executed % policy.batch == 0:
                on_batch(payload)
    finally:
        if tr is not None:
            tr.context.pop("rep", None)
    METRICS.inc("adaptive.tasks")
    METRICS.inc("adaptive.reps_saved", policy.max_reps - acc.n)
    if per_rep is not None:
        per_rep.update(payload)
    return _aggregate(payload, policy.confidence)


def sweep_checkpoint_interval(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    s_values: "list[int]",
    *,
    alpha: float,
    reps: int,
    base_seed: int = 0,
    labels: tuple = (),
    eps: float = 1e-6,
    maxiter: int | None = None,
    method: "Method | str" = Method.CG,
    reuse_workspace: bool = True,
    backend: "str | object | None" = None,
    tracer: "object | None" = None,
) -> dict[int, RunStatistics]:
    """Measure mean execution time for each checkpoint interval ``s``.

    This is the empirical side of Table 1: the ``s`` with the smallest
    mean time is the measured optimum ``s*``.  One solve workspace is
    shared across the whole sweep (same matrix throughout) unless
    ``reuse_workspace=False``; ``backend`` selects the kernel backend
    for every run of the sweep.
    """
    ws = None
    if reuse_workspace:
        from repro.perf import SolveWorkspace

        ws = SolveWorkspace()
    out: dict[int, RunStatistics] = {}
    for s in s_values:
        cfg = config.with_intervals(s=s)
        out[s] = repeat_run(
            a,
            b,
            cfg,
            alpha=alpha,
            reps=reps,
            base_seed=base_seed,
            labels=(*labels, "s", s),
            eps=eps,
            maxiter=maxiter,
            method=method,
            reuse_workspace=reuse_workspace,
            workspace=ws,
            backend=backend,
            tracer=tracer,
        )
    return out
