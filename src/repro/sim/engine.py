"""Repeated fault-injected runs and their aggregation.

The experiment drivers need, for many (method, matrix, scheme, α,
interval) tuples, the mean execution time over ``reps`` independent
runs.  Each repetition derives its RNG deterministically from
``(base_seed, [method,] scheme, α, labels…, rep)`` so any single point
of any table can be re-run in isolation and reproduce exactly.  For
``method="cg"`` the derivation tuple omits the method name — verbatim
what the drivers used before the solver axis existed — so historical
campaigns stay bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.methods import Method, SchemeConfig
from repro.resilience.registry import run_ft_method
from repro.util.rng import spawn_named

__all__ = ["RunStatistics", "repeat_run", "sweep_checkpoint_interval", "make_rhs"]


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of repeated runs at one parameter point."""

    mean_time: float  #: mean simulated execution time (units of Titer)
    std_time: float
    min_time: float
    max_time: float
    mean_iterations: float  #: mean executed iterations
    mean_rollbacks: float
    mean_corrections: float
    mean_faults: float
    convergence_rate: float  #: fraction of reps that converged
    reps: int

    @property
    def sem_time(self) -> float:
        """Standard error of the mean time."""
        return self.std_time / math.sqrt(self.reps) if self.reps > 1 else 0.0


def make_rhs(a: CSRMatrix, seed: int = 1234) -> np.ndarray:
    """Deterministic generic right-hand side for experiment runs.

    A fixed random vector, *not* ``A·1``: several generators make the
    all-ones vector an exact eigenvector, which would let CG converge in
    one step and void the experiment.
    """
    rng = np.random.default_rng(seed)
    return rng.standard_normal(a.nrows)


def repeat_run(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float,
    reps: int,
    base_seed: int = 0,
    labels: tuple = (),
    eps: float = 1e-6,
    maxiter: int | None = None,
    max_time_units: float | None = None,
    method: "Method | str" = Method.CG,
    reuse_workspace: bool = True,
    workspace: "object | None" = None,
    backend: "str | object | None" = None,
    tracer: "object | None" = None,
) -> RunStatistics:
    """Run ``reps`` independent fault-injected solves and aggregate.

    ``labels`` extends the seed-derivation tuple (matrix id, scheme …)
    so distinct experiment points never share fault streams;
    ``method`` selects the protected solver (the resilience engine's
    recurrence plugin) and, when it is not CG, additionally enters the
    seed tuple so methods never share fault streams either.

    ``backend`` selects the kernel backend (:mod:`repro.backends`;
    ``None`` = reference).  It deliberately does *not* enter the seed
    tuple: the same parameter point on two backends faces the same
    strike sequence, which is exactly what a backend comparison wants
    (campaign stores still keep them apart — the backend is part of
    the task content hash).

    ``reuse_workspace`` (default on) runs every repetition through one
    :class:`repro.perf.SolveWorkspace`: the live matrix, the solver
    buffers and the checkpoint staging are allocated once and restored
    between repetitions by strike-undo, and the ABFT checksums come
    from the per-process cache — identical results, a fraction of the
    wall clock.  Pass ``reuse_workspace=False`` for the historical
    fresh-allocation path (the bit-identity oracle), or ``workspace=``
    to share a caller-owned workspace across calls (e.g. an interval
    sweep over one matrix).

    Staleness caveat: the checksum cache keys on the matrix *object*.
    If you mutate ``a``'s arrays in place between calls, pass a fresh
    object or call :func:`repro.perf.clear_caches` first — otherwise
    the cached ABFT metadata describes the old values.

    ``tracer`` forwards a :class:`repro.obs.Tracer` to every
    repetition's solve; the repetition index is bound into the tracer's
    event context as ``"rep"`` for the duration of its run, so shard
    files can be regrouped per repetition.  Tracing is pure observation
    and cannot change trajectories (``None`` = off, the default).
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    method = Method.parse(method)
    from repro.obs.tracer import resolve_tracer

    tr = resolve_tracer(tracer)
    ws = workspace
    if ws is None and reuse_workspace:
        from repro.perf import SolveWorkspace

        ws = SolveWorkspace()
    times, iters, rbs, corrs, faults, convs = [], [], [], [], [], []
    try:
        for rep in range(reps):
            if method is Method.CG:
                rng = spawn_named(base_seed, config.scheme.value, alpha, *labels, rep)
            else:
                rng = spawn_named(base_seed, method.value, config.scheme.value, alpha, *labels, rep)
            if tr is not None:
                tr.context["rep"] = rep
            res = run_ft_method(
                method,
                a,
                b,
                config,
                alpha=alpha,
                eps=eps,
                maxiter=maxiter,
                rng=rng,
                max_time_units=max_time_units,
                workspace=ws,
                backend=backend,
                tracer=tr,
            )
            times.append(res.time_units)
            iters.append(res.iterations_executed)
            rbs.append(res.counters.rollbacks)
            corrs.append(res.counters.total_corrections)
            faults.append(res.counters.faults_injected)
            convs.append(res.converged)
    finally:
        if tr is not None:
            tr.context.pop("rep", None)
    t = np.asarray(times)
    return RunStatistics(
        mean_time=float(t.mean()),
        std_time=float(t.std(ddof=1)) if reps > 1 else 0.0,
        min_time=float(t.min()),
        max_time=float(t.max()),
        mean_iterations=float(np.mean(iters)),
        mean_rollbacks=float(np.mean(rbs)),
        mean_corrections=float(np.mean(corrs)),
        mean_faults=float(np.mean(faults)),
        convergence_rate=float(np.mean(convs)),
        reps=reps,
    )


def sweep_checkpoint_interval(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    s_values: "list[int]",
    *,
    alpha: float,
    reps: int,
    base_seed: int = 0,
    labels: tuple = (),
    eps: float = 1e-6,
    maxiter: int | None = None,
    method: "Method | str" = Method.CG,
    reuse_workspace: bool = True,
    backend: "str | object | None" = None,
    tracer: "object | None" = None,
) -> dict[int, RunStatistics]:
    """Measure mean execution time for each checkpoint interval ``s``.

    This is the empirical side of Table 1: the ``s`` with the smallest
    mean time is the measured optimum ``s*``.  One solve workspace is
    shared across the whole sweep (same matrix throughout) unless
    ``reuse_workspace=False``; ``backend`` selects the kernel backend
    for every run of the sweep.
    """
    ws = None
    if reuse_workspace:
        from repro.perf import SolveWorkspace

        ws = SolveWorkspace()
    out: dict[int, RunStatistics] = {}
    for s in s_values:
        cfg = config.with_intervals(s=s)
        out[s] = repeat_run(
            a,
            b,
            cfg,
            alpha=alpha,
            reps=reps,
            base_seed=base_seed,
            labels=(*labels, "s", s),
            eps=eps,
            maxiter=maxiter,
            method=method,
            reuse_workspace=reuse_workspace,
            workspace=ws,
            backend=backend,
            tracer=tracer,
        )
    return out
