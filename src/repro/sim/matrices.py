"""The nine-matrix evaluation suite and the real-workload registry.

Table 1 of the paper lists nine SPD matrices from the UFL collection by
id, dimension and density.  The collection is unavailable offline, so
each entry is synthesized with the *same id, n and density* (and hence
the same memory size M, which drives the fault rate λ = α/M).  Several
generator families are used so the suite is not nine copies of one
spectrum; every generator yields SPD by construction.  See
``docs/DESIGN.md`` §2 for the substitution argument.

Scaling: full paper sizes (17k–75k) make 50-repetition sweeps slow on a
laptop, so :func:`get_matrix` accepts a ``scale`` divisor that shrinks
``n`` while preserving the *nonzeros per row* (so iteration cost and
checksum overhead keep their relative shape).  ``scale=1`` reproduces
the paper's dimensions exactly.

Real workloads: :func:`get_matrix` also accepts a Matrix-Market file
path or a workload *name* registered by dropping ``<name>.mtx`` (or
``.mtx.gz``) into the directory named by the ``REPRO_MATRIX_DIR``
environment variable.  When the registry holds a file named after a
paper uid (``341.mtx`` …) and the caller asks for that uid at
``scale=1`` — the paper's own dimensions — the *real* UFL matrix is
loaded instead of the synthetic stand-in, so full-scale campaigns run
the authors' actual matrices when they are present.  File-backed
matrices cannot be rescaled (``scale`` must be 1 for explicit
paths/names).  Note the environment does not enter campaign task
hashes: don't resume a synthetic-suite store with ``REPRO_MATRIX_DIR``
pointing at real matrices (or vice versa) — use separate stores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import stencil_spd

__all__ = [
    "MatrixSpec",
    "PAPER_SUITE",
    "MATRIX_DIR_ENV",
    "suite_specs",
    "workload_registry",
    "matrix_source",
    "get_matrix",
    "clear_matrix_cache",
]

#: Environment variable naming the Matrix-Market workload directory.
MATRIX_DIR_ENV = "REPRO_MATRIX_DIR"

#: Recognized Matrix-Market suffixes (scipy reads ``.gz`` transparently).
_MM_SUFFIXES = (".mtx", ".mtx.gz")


@dataclass(frozen=True)
class MatrixSpec:
    """One row of the paper's matrix table.

    The UFL matrices of Table 1 are predominantly elliptic-PDE
    discretizations, so each suite entry is synthesized as a 2-D
    wide-stencil diffusion operator (:func:`repro.sparse.generators
    .stencil_spd`) whose stencil shape/radius matches the paper's
    nonzeros-per-row and whose anisotropy varies across entries to
    diversify the spectra.  This family has the continuously spread
    spectrum of real PDE matrices — CG takes O(grid side) iterations —
    unlike diagonally dominant random matrices, which CG solves in a
    handful of steps and which would make interval optimization moot.

    Attributes
    ----------
    uid:
        UFL collection id quoted by the paper (used as label only).
    n:
        Dimension at paper scale.
    density:
        nnz / n² at paper scale.
    kind / radius / anisotropy:
        Stencil parameters chosen so nnz/row ≈ ``density · n``
        (box: (2r+1)² per row, cross: 4r+1 per row).
    """

    uid: int
    n: int
    density: float
    kind: str = "cross"
    radius: int = 1
    anisotropy: float = 1.0

    @property
    def nnz_per_row(self) -> float:
        """Average nonzeros per row (preserved under scaling)."""
        return self.density * self.n

    def scaled_n(self, scale: int) -> int:
        """Dimension after applying a scale divisor (min 512)."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return max(512, self.n // scale)

    def instantiate(self, scale: int = 1) -> CSRMatrix:
        """Build the matrix at the given scale (deterministic per uid)."""
        return stencil_spd(
            self.scaled_n(scale),
            kind=self.kind,
            radius=self.radius,
            anisotropy=self.anisotropy,
        )


#: The paper's Table-1 suite: ids, dimensions and densities verbatim;
#: stencil parameters chosen to match each entry's nnz/row.
PAPER_SUITE: tuple[MatrixSpec, ...] = (
    MatrixSpec(uid=341, n=23052, density=2.15e-3, kind="box", radius=3),  # ≈50/row
    MatrixSpec(uid=752, n=74752, density=1.07e-4, kind="box", radius=1),  # ≈8/row
    MatrixSpec(uid=924, n=60000, density=2.11e-4, kind="cross", radius=3),  # ≈13/row
    MatrixSpec(uid=1288, n=30401, density=5.10e-4, kind="cross", radius=4, anisotropy=2.0),
    MatrixSpec(uid=1289, n=36441, density=4.26e-4, kind="cross", radius=4),  # ≈16/row
    MatrixSpec(uid=1311, n=48962, density=2.14e-4, kind="cross", radius=2),  # ≈10/row
    MatrixSpec(uid=1312, n=40000, density=1.24e-4, kind="cross", radius=1),  # 5-point
    MatrixSpec(uid=1848, n=65025, density=2.44e-4, kind="cross", radius=4, anisotropy=0.5),
    MatrixSpec(uid=2213, n=20000, density=1.39e-3, kind="box", radius=2),  # ≈25/row
)


def suite_specs(uids: "list[int] | None" = None) -> tuple[MatrixSpec, ...]:
    """The suite, optionally filtered to the given paper ids."""
    if uids is None:
        return PAPER_SUITE
    by_id = {s.uid: s for s in PAPER_SUITE}
    missing = [u for u in uids if u not in by_id]
    if missing:
        raise KeyError(f"unknown matrix ids: {missing}; known: {sorted(by_id)}")
    return tuple(by_id[u] for u in uids)


def workload_registry() -> "dict[str, Path]":
    """The Matrix-Market files registered via ``REPRO_MATRIX_DIR``.

    Maps workload name (file stem, without the ``.mtx``/``.mtx.gz``
    suffix) to its path.  Empty when the variable is unset, the
    directory is missing, or it holds no Matrix-Market files.  Scanned
    on every call (cheap — one ``listdir``) so tests and long-lived
    processes see environment changes without a cache reset.
    """
    root = os.environ.get(MATRIX_DIR_ENV)
    if not root:
        return {}
    root = Path(root)
    if not root.is_dir():
        return {}
    out: "dict[str, Path]" = {}
    for suffix in _MM_SUFFIXES:  # .mtx wins over .mtx.gz on a name clash
        for path in sorted(root.glob(f"*{suffix}")):
            out.setdefault(path.name[: -len(suffix)], path)
    return out


def _resolve_workload(key: str) -> Path:
    """Resolve an explicit path or a registered workload name."""
    direct = Path(key)
    if direct.suffix and direct.is_file():
        return direct
    registry = workload_registry()
    if key in registry:
        return registry[key]
    known = sorted(registry)
    raise KeyError(
        f"unknown workload {key!r}: not a Matrix-Market file path and not a "
        f"name registered under ${MATRIX_DIR_ENV} "
        f"(registered: {known if known else 'none'})"
    )


@lru_cache(maxsize=None)
def _load_workload(path: str) -> CSRMatrix:
    """Load (and cache) one Matrix-Market file by resolved path."""
    from repro.sparse.io import load_matrix_market

    return load_matrix_market(path)


@lru_cache(maxsize=None)
def _synthesize(uid: int, scale: int) -> CSRMatrix:
    """Instantiate (and cache) one synthetic suite matrix."""
    (spec,) = suite_specs([uid])
    return spec.instantiate(scale)


def get_matrix(uid: "int | str | os.PathLike", scale: int = 1) -> CSRMatrix:
    """Resolve (and cache) an evaluation matrix.

    ``uid`` may be

    - a paper id (int): the synthetic suite entry — unless ``scale`` is
      1 *and* ``REPRO_MATRIX_DIR`` registers a file named after the id,
      in which case the real UFL matrix is loaded instead;
    - a path to a Matrix-Market file (``.mtx`` / ``.mtx.gz``);
    - a workload name registered under ``REPRO_MATRIX_DIR``.

    Both caches are unbounded on purpose: a wide Study sweep touches up
    to 9 uids × several scales interleaved, and an evicting LRU could
    drop entries mid-campaign — silently re-paying matrix synthesis
    *and* invalidating the identity-keyed checksum cache that hangs off
    each instance.  The working set is small (a paper-scale matrix is a
    few MB); a long-lived process that wants the memory back calls
    :func:`clear_matrix_cache` (or :func:`repro.perf.clear_caches`) at
    a quiescent point.  File-backed entries are keyed by path, not
    content — after rewriting a file in place, clear the cache.
    """
    if isinstance(uid, (str, os.PathLike)):
        if scale != 1:
            raise ValueError(
                f"file-backed workloads cannot be rescaled: scale must be 1, got {scale}"
            )
        return _load_workload(str(_resolve_workload(os.fspath(uid))))
    if scale == 1:
        registry = workload_registry()
        real = registry.get(str(uid))
        if real is not None:
            return _load_workload(str(real))
    return _synthesize(uid, scale)


def matrix_source(uid: "int | str | os.PathLike", scale: int = 1) -> str:
    """Where :func:`get_matrix` would read this matrix from.

    Returns ``"synthetic"`` for a generated suite entry, else the
    resolved file path.  Campaign records carry this as provenance:
    task hashes deliberately ignore the environment, so the record is
    where a reader can tell a synthetic-suite result from a
    real-matrix one (and spot a store that mixed the two).
    """
    if isinstance(uid, (str, os.PathLike)):
        return str(_resolve_workload(os.fspath(uid)))
    if scale == 1:
        real = workload_registry().get(str(uid))
        if real is not None:
            return str(real)
    return "synthetic"


def clear_matrix_cache() -> None:
    """Explicitly drop every cached matrix (synthetic and file-backed).

    Also invalidates (by garbage collection) the per-matrix checksum
    cache entries keyed on the dropped instances.  Campaign workers may
    call this between tasks to bound memory on huge sweeps.
    """
    _synthesize.cache_clear()
    _load_workload.cache_clear()
