"""Variance-aware sequential stopping for campaign sampling.

The paper's headline metric is the *mean* execution time over
repetitions, yet a fixed ``reps`` count spends the same budget on every
grid point regardless of how noisy that point actually is.  This module
supplies the statistics layer for adaptive campaigns (docs/DESIGN.md
§11): a task runs repetitions until the Student-t confidence-interval
half-width on the mean drops below a target (relative to the mean, or
absolute), subject to ``min_reps``/``max_reps`` bounds.

Three deliberate design points:

* **Identity, not seed.**  The sampling policy is part of task
  *identity* (it changes the task hash) but never enters seed
  derivation: per-rep RNG streams still come from
  ``spawn_named(base_seed, ..., rep)``, so an adaptive run that stops at
  rep ``k`` is bit-identical to the first ``k`` reps of a fixed-count
  run from the same base seed.
* **Online accumulation.**  :class:`Welford` maintains mean and variance
  in one pass with compensated summation, so the stopping rule needs no
  access to the full sample and partial-progress records stay small.
* **No SciPy.**  The Student-t critical value is computed here from the
  regularized incomplete beta function (continued fraction) and a
  deterministic bisection — pure ``math``, identical on every platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "SamplingPolicy",
    "Welford",
    "t_critical",
    "half_width",
    "ci_bounds",
    "resolve_sampling",
]

# ---------------------------------------------------------------------------
# Student-t critical values (no SciPy: incomplete beta + bisection)
# ---------------------------------------------------------------------------

_BETA_EPS = 3e-16
_BETA_FPMIN = 1e-300
_BETA_MAXIT = 300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta function.

    Modified Lentz evaluation of the even/odd continued-fraction
    expansion (Numerical Recipes §6.4); converges in a handful of terms
    for ``x < (a + 1) / (a + b + 2)``, which :func:`_betai` guarantees.
    """
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _BETA_FPMIN:
        d = _BETA_FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _BETA_MAXIT + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETA_FPMIN:
            d = _BETA_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETA_FPMIN:
            c = _BETA_FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETA_FPMIN:
            d = _BETA_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETA_FPMIN:
            c = _BETA_FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETA_EPS:
            break
    return h


def _betai(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b) for 0 <= x <= 1."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_bt = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    bt = math.exp(ln_bt)
    if x < (a + 1.0) / (a + b + 2.0):
        return bt * _betacf(a, b, x) / a
    return 1.0 - bt * _betacf(b, a, 1.0 - x) / b


def _t_cdf(x: float, df: int) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    tail = 0.5 * _betai(df / 2.0, 0.5, df / (df + x * x))
    return 1.0 - tail if x >= 0.0 else tail


@lru_cache(maxsize=4096)
def t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value ``t`` with ``P(|T| <= t) = confidence``.

    Deterministic and dependency-free: the t CDF is evaluated through the
    regularized incomplete beta function and inverted by bisection with a
    fixed iteration budget, so the same ``(confidence, df)`` always yields
    the same float on every platform.  Results are cached.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    # Two-sided: find t with CDF(t) = 1 - (1 - confidence) / 2.
    p = 1.0 - (1.0 - confidence) / 2.0
    lo, hi = 0.0, 1.0
    while _t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - unreachable for confidence < 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mid == lo or mid == hi:
            break
        if _t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def half_width(n: int, std: float, confidence: float) -> float:
    """Student-t CI half-width ``t * std / sqrt(n)``; 0.0 when ``n < 2``."""
    if n < 2:
        return 0.0
    return t_critical(confidence, n - 1) * std / math.sqrt(n)


def ci_bounds(
    mean: float, std: float, n: int, confidence: float
) -> "tuple[float, float] | None":
    """Two-sided Student-t CI on the mean, or None when ``n < 2``."""
    if n < 2:
        return None
    hw = half_width(n, std, confidence)
    return (mean - hw, mean + hw)


# ---------------------------------------------------------------------------
# Welford online mean / variance
# ---------------------------------------------------------------------------


class Welford:
    """Online mean/variance accumulator (Welford recurrence, compensated).

    Maintains the running mean through a Neumaier-compensated sum (so the
    mean matches ``statistics.mean`` to the last ulp) and the centered
    second moment M2 through the classic Welford update, itself
    compensated.  ``variance``/``std`` use the sample convention
    (``ddof=1``), matching ``numpy.std(ddof=1)`` and ``statistics.stdev``.
    """

    __slots__ = ("_n", "_sum", "_sum_c", "_m2", "_m2_c")

    def __init__(self, values: "list[float] | tuple[float, ...] | None" = None):
        self._n = 0
        self._sum = 0.0
        self._sum_c = 0.0  # Neumaier compensation for the running sum
        self._m2 = 0.0
        self._m2_c = 0.0  # compensation for the M2 accumulation
        if values:
            for v in values:
                self.push(v)

    def push(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        x = float(x)
        mean_old = self.mean
        # Neumaier-compensated running sum -> exactly rounded mean.
        t = self._sum + x
        if abs(self._sum) >= abs(x):
            self._sum_c += (self._sum - t) + x
        else:
            self._sum_c += (x - t) + self._sum
        self._sum = t
        self._n += 1
        # Welford M2 update with the compensated means on both sides.
        delta = x - mean_old
        term = delta * (x - self.mean)
        t2 = self._m2 + term
        if abs(self._m2) >= abs(term):
            self._m2_c += (self._m2 - t2) + term
        else:
            self._m2_c += (term - t2) + self._m2
        self._m2 = t2

    @property
    def n(self) -> int:
        """Number of observations folded so far."""
        return self._n

    @property
    def mean(self) -> float:
        """Running mean (0.0 before the first observation)."""
        if self._n == 0:
            return 0.0
        return (self._sum + self._sum_c) / self._n

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 when fewer than two observations."""
        if self._n < 2:
            return 0.0
        return max(0.0, (self._m2 + self._m2_c) / (self._n - 1))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        return math.sqrt(self.variance)


# ---------------------------------------------------------------------------
# Sampling policy
# ---------------------------------------------------------------------------

_SPEC_KEYS = ("ci", "conf", "min", "max", "batch", "target")


def _format_float(x: float) -> str:
    """Shortest exact decimal for a float (repr, minus a trailing ``.0``)."""
    s = repr(float(x))
    return s[:-2] if s.endswith(".0") else s


@dataclass(frozen=True)
class SamplingPolicy:
    """Sequential-stopping policy for adaptive campaigns.

    A task runs repetitions until the Student-t CI half-width on the
    mean time drops to ``ci`` — a fraction of the running mean when
    ``relative`` (the default), an absolute time-unit width otherwise —
    but never before ``min_reps`` or beyond ``max_reps`` repetitions.
    ``batch`` is the persistence granularity: a partial-progress record
    is flushed to the store after every ``batch`` completed reps (the
    stopping rule itself is evaluated after every rep).

    The canonical string form (:meth:`spec`) is what
    ``TaskSpec.sampling`` stores, so equal policies always hash equally.
    """

    ci: float = 0.05
    confidence: float = 0.95
    min_reps: int = 5
    max_reps: int = 200
    batch: int = 1
    relative: bool = True

    def __post_init__(self) -> None:
        if not self.ci > 0.0:
            raise ValueError(f"ci target must be > 0, got {self.ci}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_reps < 1:
            raise ValueError(f"min reps must be >= 1, got {self.min_reps}")
        if self.max_reps < self.min_reps:
            raise ValueError(
                f"max reps ({self.max_reps}) must be >= min reps "
                f"({self.min_reps})"
            )
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")

    @classmethod
    def parse(cls, spec: str) -> "SamplingPolicy":
        """Parse ``"ci=0.05,conf=0.95,min=5,max=200[,batch=B][,target=abs]"``.

        Keys may appear in any order and any may be omitted (defaults
        apply).  ``target`` is ``rel`` (half-width relative to the mean,
        default) or ``abs`` (absolute time units).
        """
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not value:
                raise ValueError(
                    f"malformed sampling entry {part!r}: expected key=value"
                )
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"unknown sampling key {key!r}; expected one of "
                    f"{', '.join(_SPEC_KEYS)}"
                )
            if key in kwargs or (key == "target" and "relative" in kwargs):
                raise ValueError(f"duplicate sampling key {key!r}")
            try:
                if key == "ci":
                    kwargs["ci"] = float(value)
                elif key == "conf":
                    kwargs["confidence"] = float(value)
                elif key == "min":
                    kwargs["min_reps"] = int(value)
                elif key == "max":
                    kwargs["max_reps"] = int(value)
                elif key == "batch":
                    kwargs["batch"] = int(value)
                else:  # target
                    if value not in ("rel", "abs"):
                        raise ValueError(
                            f"target must be 'rel' or 'abs', got {value!r}"
                        )
                    kwargs["relative"] = value == "rel"
            except ValueError:
                raise
            except Exception as exc:  # int()/float() failures
                raise ValueError(
                    f"bad value for sampling key {key!r}: {value!r}"
                ) from exc
        return cls(**kwargs)

    def spec(self) -> str:
        """Canonical string form; ``parse(p.spec()) == p`` always holds."""
        parts = [
            f"ci={_format_float(self.ci)}",
            f"conf={_format_float(self.confidence)}",
            f"min={self.min_reps}",
            f"max={self.max_reps}",
        ]
        if self.batch != 1:
            parts.append(f"batch={self.batch}")
        if not self.relative:
            parts.append("target=abs")
        return ",".join(parts)

    def target_width(self, mean: float) -> float:
        """The half-width the CI must reach for the given running mean."""
        return self.ci * abs(mean) if self.relative else self.ci

    def should_stop(self, n: int, mean: float, std: float) -> bool:
        """Sequential stopping rule after ``n`` completed repetitions."""
        if n >= self.max_reps:
            return True
        if n < self.min_reps:
            return False
        return half_width(n, std, self.confidence) <= self.target_width(mean)


def resolve_sampling(
    spec: "str | SamplingPolicy | None",
) -> "SamplingPolicy | None":
    """Collapse a spec string / policy / None to a policy or None.

    Mirrors ``resolve_tracer``/``resolve_chaos``: the empty string and
    None mean "fixed-count sampling" and come back as None.
    """
    if spec is None or spec == "":
        return None
    if isinstance(spec, SamplingPolicy):
        return spec
    return SamplingPolicy.parse(spec)
