"""The abstract performance model of Section 4.

Execution is partitioned into *frames* of ``s`` *chunks*; each chunk is
``T`` time units of work followed by a verification, and each frame
ends with a checkpoint.  Under an exponential error model with
per-chunk success probability ``q``, the expected frame time is
(paper Eq. 5)

    E(s, T) = Tcp + (q^{-s} − 1)·Trec + (T + Tverif)·(1 − qˢ)/(qˢ(1 − q))

and the optimal ``s`` minimizes the overhead ``E(s, T)/(sT)`` (Eq. 6),
which has no closed form and is resolved numerically.
"""

from repro.model.frames import (
    expected_time_lost,
    expected_frame_time,
    frame_overhead,
)
from repro.model.optimize import optimal_interval, optimal_online_intervals
from repro.model.instantiate import (
    OnlineDetectionModel,
    AbftDetectionModel,
    AbftCorrectionModel,
    model_for_scheme,
)
from repro.model.daly import young_period, daly_period
from repro.model.chen import chen_intervals
from repro.model.dp import optimal_checkpoint_positions

__all__ = [
    "expected_time_lost",
    "expected_frame_time",
    "frame_overhead",
    "optimal_interval",
    "optimal_online_intervals",
    "OnlineDetectionModel",
    "AbftDetectionModel",
    "AbftCorrectionModel",
    "model_for_scheme",
    "young_period",
    "daly_period",
    "chen_intervals",
    "optimal_checkpoint_positions",
]
