"""Model instantiation for the three schemes (Section 4.2).

Each class binds the abstract frame model to one scheme's parameters:

- chunk length ``T`` (``d·Titer`` for ONLINE-DETECTION, ``Titer`` for
  the ABFT schemes, which verify every iteration),
- verification cost ``Tverif``,
- per-chunk success probability ``q``.

The crucial difference of ABFT-CORRECTION (Section 4.2.3) is its
success probability: an iteration *succeeds* if **zero or one** error
strikes (single errors are forward-corrected), so with a Poisson
process of rate λ,

    q = e^{−λT} + λT·e^{−λT},

strictly larger than the detection-only ``q = e^{−λT}`` — fewer
rollbacks and sparser checkpoints at the same fault rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.methods import CostModel, Scheme
from repro.model.optimize import IntervalChoice, optimal_interval, optimal_online_intervals

__all__ = [
    "OnlineDetectionModel",
    "AbftDetectionModel",
    "AbftCorrectionModel",
    "model_for_scheme",
]


@dataclass(frozen=True)
class _SchemeModel:
    """Shared plumbing for the per-scheme models."""

    lam: float  #: cumulative silent-error rate λ = λ_a + λ_m
    costs: CostModel

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError(f"lam must be >= 0, got {self.lam}")

    # Subclasses define: chunk_time, t_verif, q().

    def expected_frame_time(self, s: int) -> float:
        """E(s, T) for this scheme's chunk parameters."""
        from repro.model.frames import expected_frame_time

        return expected_frame_time(
            s, self.chunk_time, self.costs.t_cp, self.costs.t_rec, self.t_verif, self.q()
        )

    def overhead(self, s: int) -> float:
        """E(s,T)/(sT) for this scheme."""
        from repro.model.frames import frame_overhead

        return frame_overhead(
            s, self.chunk_time, self.costs.t_cp, self.costs.t_rec, self.t_verif, self.q()
        )

    def optimal(self, *, s_max: int = 1000) -> IntervalChoice:
        """The model-optimal checkpoint interval s̃."""
        return optimal_interval(
            self.chunk_time,
            self.q(),
            self.costs.t_cp,
            self.costs.t_rec,
            self.t_verif,
            s_max=s_max,
        )

    def expected_solve_time(self, n_iterations: int, *, s: int | None = None) -> float:
        """Predicted total time for ``n_iterations`` of useful work.

        Uses the per-useful-unit overhead at interval ``s`` (optimal
        when None): ``n_iterations · Titer · overhead``.
        """
        choice_s = self.optimal().s if s is None else s
        work = n_iterations * self.costs.t_iter
        return work * self.overhead(choice_s) * (self.chunk_time / self.chunk_time)


@dataclass(frozen=True)
class OnlineDetectionModel(_SchemeModel):
    """Chen's scheme: chunks of ``d`` iterations (Section 4.2.1)."""

    d: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.d < 1:
            raise ValueError(f"d must be >= 1, got {self.d}")

    @property
    def chunk_time(self) -> float:
        return self.d * self.costs.t_iter

    @property
    def t_verif(self) -> float:
        return self.costs.t_verif_online

    def q(self) -> float:
        return math.exp(-self.lam * self.chunk_time)

    def optimal_joint(self, *, d_max: int = 200, s_max: int = 200) -> IntervalChoice:
        """Jointly optimize verification and checkpoint intervals."""
        return optimal_online_intervals(
            self.costs.t_iter,
            self.lam,
            self.costs.t_cp,
            self.costs.t_rec,
            self.t_verif,
            d_max=d_max,
            s_max=s_max,
        )


@dataclass(frozen=True)
class AbftDetectionModel(_SchemeModel):
    """ABFT detection every iteration (Section 4.2.2): T = Titer."""

    @property
    def chunk_time(self) -> float:
        return self.costs.t_iter

    @property
    def t_verif(self) -> float:
        return self.costs.t_verif_detect

    def q(self) -> float:
        return math.exp(-self.lam * self.chunk_time)


@dataclass(frozen=True)
class AbftCorrectionModel(_SchemeModel):
    """ABFT detect-2/correct-1 every iteration (Section 4.2.3).

    Success = zero **or one** strike in the iteration:
    ``q = e^{−λT}(1 + λT)``.
    """

    @property
    def chunk_time(self) -> float:
        return self.costs.t_iter

    @property
    def t_verif(self) -> float:
        return self.costs.t_verif_correct

    def q(self) -> float:
        lt = self.lam * self.chunk_time
        return math.exp(-lt) * (1.0 + lt)


def model_for_scheme(
    scheme: Scheme, lam: float, costs: CostModel, *, d: int = 1
) -> _SchemeModel:
    """Factory mapping a :class:`Scheme` to its instantiated model."""
    if scheme is Scheme.ONLINE_DETECTION:
        return OnlineDetectionModel(lam=lam, costs=costs, d=d)
    if scheme is Scheme.ABFT_DETECTION:
        return AbftDetectionModel(lam=lam, costs=costs)
    if scheme is Scheme.ABFT_CORRECTION:
        return AbftCorrectionModel(lam=lam, costs=costs)
    raise ValueError(f"unknown scheme: {scheme!r}")
