"""Young/Daly closed-form checkpoint periods (fail-stop baselines).

The paper cites these as the classical results for *pure periodic
checkpointing* against fail-stop errors — the closed forms that do
**not** exist once verifications are in the loop (hence the numerical
Eq.-6 optimization).  They are included as baselines for the model
ablation (bench E5): in the regime of cheap verification, the Eq.-6
optimum approaches the Young/Daly period divided by the chunk length.
"""

from __future__ import annotations

import math

from repro.util.validate import check_positive

__all__ = ["young_period", "daly_period"]


def young_period(t_cp: float, lam: float) -> float:
    """Young's first-order optimum ``T_opt = sqrt(2·Tcp/λ)`` [Young'74]."""
    check_positive("t_cp", t_cp)
    check_positive("lam", lam)
    return math.sqrt(2.0 * t_cp / lam)


def daly_period(t_cp: float, lam: float) -> float:
    """Daly's higher-order estimate [Daly'04].

    .. math::

        T_{opt} = \\sqrt{2 δ M}\\left[1 + \\tfrac13\\sqrt{δ/(2M)}
                 + \\tfrac19 (δ/(2M))\\right] − δ,  \\quad δ < 2M

    with ``δ = Tcp`` and ``M = 1/λ`` the MTBF; for ``δ ≥ 2M`` Daly
    prescribes ``T_opt = M``.
    """
    check_positive("t_cp", t_cp)
    check_positive("lam", lam)
    mtbf = 1.0 / lam
    if t_cp >= 2.0 * mtbf:
        return mtbf
    ratio = t_cp / (2.0 * mtbf)
    return math.sqrt(2.0 * t_cp * mtbf) * (
        1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    ) - t_cp
