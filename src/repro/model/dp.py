"""Dynamic-programming checkpoint placement (Benoit et al. [3]).

The paper points out that, absent a closed form, "a dynamic programming
algorithm to compute the optimal repartition of checkpoints and
verifications is available".  This module implements that idea for a
finite horizon: given ``n`` verified chunks to execute, choose after
which chunks to checkpoint so that the total expected time (sum of
Eq.-5 frame times over the induced frames) is minimal.

For homogeneous chunks the optimal placement is near-periodic — which
is the ablation (bench E5) validating the paper's purely periodic
policy — but the DP also handles the general case and returns the
exact optimum for the given horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.frames import expected_frame_time

__all__ = ["DPPlacement", "optimal_checkpoint_positions"]


@dataclass(frozen=True)
class DPPlacement:
    """Result of the placement DP."""

    positions: tuple[int, ...]  #: chunk indices (1-based) after which to checkpoint
    expected_time: float  #: total expected execution time
    frame_sizes: tuple[int, ...]  #: sizes of the induced frames


def optimal_checkpoint_positions(
    n_chunks: int,
    t: float,
    q: float,
    t_cp: float,
    t_rec: float,
    t_verif: float,
    *,
    max_frame: int | None = None,
) -> DPPlacement:
    """Exact optimal checkpoint placement over ``n_chunks`` chunks.

    ``E*(j)`` = minimal expected time to finish the first ``j`` chunks
    with a checkpoint after chunk ``j``; the recurrence tries every
    last-frame size ``s``:

        E*(j) = min_{1 ≤ s ≤ j} E*(j − s) + E(s, T)

    with ``E(s, T)`` from Eq. 5.  O(n²) time, O(n) space (or
    O(n·max_frame) when a frame-size cap is given).  The final
    checkpoint after the last chunk is conventionally included (drop
    ``t_cp`` from the last frame if undesired — it is a constant).
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    cap = n_chunks if max_frame is None else min(max_frame, n_chunks)

    # Precompute frame costs for every size once (the frames are
    # homogeneous, so E(s,T) depends only on s).
    frame_cost = [0.0] * (cap + 1)
    for s in range(1, cap + 1):
        frame_cost[s] = expected_frame_time(s, t, t_cp, t_rec, t_verif, q)

    best = [0.0] + [float("inf")] * n_chunks
    argbest = [0] * (n_chunks + 1)
    for j in range(1, n_chunks + 1):
        for s in range(1, min(cap, j) + 1):
            cand = best[j - s] + frame_cost[s]
            if cand < best[j]:
                best[j] = cand
                argbest[j] = s
    # Reconstruct frame boundaries.
    sizes: list[int] = []
    j = n_chunks
    while j > 0:
        sizes.append(argbest[j])
        j -= argbest[j]
    sizes.reverse()
    positions: list[int] = []
    acc = 0
    for s in sizes:
        acc += s
        positions.append(acc)
    return DPPlacement(
        positions=tuple(positions),
        expected_time=best[n_chunks],
        frame_sizes=tuple(sizes),
    )
