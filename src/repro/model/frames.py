"""Expected frame time: Equations 4–5 of the paper.

Derivation (Section 4.1): a frame executes ``s`` chunks of ``T`` work
units, each followed by a ``Tverif`` verification, and closes with a
``Tcp`` checkpoint.  With per-chunk success probability ``q``, all ``s``
chunks succeed with probability ``qˢ``; otherwise the error is caught
at the end of its chunk (conditional distribution ``f_i``), the lost
time is ``E(T_lost)``, a recovery ``Trec`` is paid and the frame starts
over.  Solving the recursion gives Eq. 5; this module implements the
closed forms including the ``q → 1`` (error-free) limits.
"""

from __future__ import annotations

import numpy as np

from repro.util.validate import check_nonnegative, check_positive, check_probability

__all__ = ["expected_time_lost", "expected_frame_time", "frame_overhead"]


def expected_time_lost(s: int, t: float, t_verif: float, q: float) -> float:
    """``E(T_lost)``: expected wasted time when a frame fails.

    .. math::

        E(T_{lost}) = (T + T_{verif}) ·
            \\frac{s q^{s+1} − (s+1) q^s + 1}{(1 − q^s)(1 − q)}

    Defined for ``q < 1`` (with ``q = 1`` a frame never fails, so the
    conditional expectation is vacuous and we return 0).
    """
    _check_common(s, t, t_verif, q)
    if q >= 1.0:
        return 0.0
    qs = q**s
    numer = s * q ** (s + 1) - (s + 1) * qs + 1.0
    denom = (1.0 - qs) * (1.0 - q)
    return (t + t_verif) * numer / denom


def expected_frame_time(
    s: int,
    t: float,
    t_cp: float,
    t_rec: float,
    t_verif: float,
    q: float,
) -> float:
    """``E(s, T)`` of Eq. 5 — expected time to complete one frame.

    .. math::

        E(s,T) = T_{cp} + (q^{-s} − 1) T_{rec}
               + (T + T_{verif}) \\frac{1 − q^s}{q^s (1 − q)}

    In the error-free limit ``q → 1`` this degenerates to
    ``s·(T + Tverif) + Tcp`` (every chunk runs once, no recovery), which
    is also what the formula tends to.
    """
    _check_common(s, t, t_verif, q)
    check_nonnegative("t_cp", t_cp)
    check_nonnegative("t_rec", t_rec)
    if q >= 1.0:
        return s * (t + t_verif) + t_cp
    qs = q**s
    return t_cp + (1.0 / qs - 1.0) * t_rec + (t + t_verif) * (1.0 - qs) / (qs * (1.0 - q))


def frame_overhead(
    s: int,
    t: float,
    t_cp: float,
    t_rec: float,
    t_verif: float,
    q: float,
) -> float:
    """The Eq.-6 objective ``E(s, T) / (s·T)``.

    The value is the expected time paid per *useful* time unit; the
    optimal checkpointing interval minimizes it over ``s ≥ 1``.
    """
    return expected_frame_time(s, t, t_cp, t_rec, t_verif, q) / (s * t)


def _check_common(s: int, t: float, t_verif: float, q: float) -> None:
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    check_positive("t", t)
    check_nonnegative("t_verif", t_verif)
    check_probability("q", q)
    if q == 0.0:
        raise ValueError("q must be positive: a chunk with q=0 never succeeds")


def _as_float_array(x) -> np.ndarray:  # pragma: no cover - helper for sweeps
    return np.asarray(x, dtype=np.float64)
