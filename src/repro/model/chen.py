"""First-order interval estimates for Chen's Online-ABFT scheme.

Chen [9, Eq. 10] derives his intervals by numerically minimizing a
waste equation very close to Eq. 6 (the paper notes "plugging these
values in Equation (6) gives an optimisation formula very similar to
that of Chen").  For the simulation driver we expose both that exact
numerical optimum (via :func:`repro.model.optimize
.optimal_online_intervals`) and the Young-style first-order closed
form below, obtained by minimizing the waste

    W(d, c) = Tverif/(d·Titer) + Tcp/(c·d·Titer)
              + λ·(c·d·Titer/2 + d·Titer/2 + Trec)

(verification cost amortized per chunk, checkpoint cost per frame,
expected re-execution of half a frame plus detection latency of half a
chunk per fault).  Setting partials to zero gives

    d* = sqrt(2·Tverif / λ) / Titer · 1/sqrt(1 + cλ·…) ≈ sqrt(2 Tverif/λ)/Titer
    c* = sqrt(Tcp / (Tverif + λ·d·Titer·…)) ≈ sqrt(Tcp/Tverif)

— the familiar result that the checkpoint-to-verification interval
ratio scales with the square root of the cost ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validate import check_positive

__all__ = ["ChenIntervals", "chen_intervals"]


@dataclass(frozen=True)
class ChenIntervals:
    """First-order optimal intervals for verify-every-d, checkpoint-every-c·d."""

    d: int  #: iterations between verifications
    c: int  #: verified chunks between checkpoints
    waste: float  #: first-order predicted waste at the optimum


def chen_intervals(
    t_iter: float,
    lam: float,
    t_cp: float,
    t_verif: float,
    t_rec: float = 0.0,
) -> ChenIntervals:
    """First-order ``(d, c)`` for Chen's scheme (see module docstring).

    Both intervals are clamped to at least 1; the waste is evaluated at
    the rounded integer point so it is achievable, not the continuous
    bound.
    """
    check_positive("t_iter", t_iter)
    check_positive("lam", lam)
    check_positive("t_cp", t_cp)
    check_positive("t_verif", t_verif)
    d_star = math.sqrt(2.0 * t_verif / lam) / t_iter
    c_star = math.sqrt(max(t_cp / t_verif, 1.0))
    d = max(1, round(d_star))
    c = max(1, round(c_star))

    def waste(dd: int, cc: int) -> float:
        t = dd * t_iter
        return (
            t_verif / t
            + t_cp / (cc * t)
            + lam * (cc * t / 2.0 + t / 2.0 + t_rec)
        )

    return ChenIntervals(d=d, c=c, waste=waste(d, c))
