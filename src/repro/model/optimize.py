"""Numerical resolution of Eq. 6.

There is no known closed form for the optimal ``s`` (Section 1 of the
paper discusses why Young/Daly do not carry over once verifications
enter the picture), but the objective ``E(s,T)/(sT)`` is cheap to
evaluate and unimodal in practice, so an integer scan with a safe upper
bound is both exact and fast.  ONLINE-DETECTION additionally exposes
the chunk length ``d`` (iterations between verifications), giving a
small 2-D integer program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.frames import frame_overhead

__all__ = ["IntervalChoice", "optimal_interval", "optimal_online_intervals"]


@dataclass(frozen=True)
class IntervalChoice:
    """An optimized interval selection and its predicted overhead."""

    s: int  #: chunks per frame (checkpoint interval)
    d: int  #: iterations per chunk (verification interval)
    overhead: float  #: E(s,T)/(sT) at the optimum


def optimal_interval(
    t: float,
    q: float,
    t_cp: float,
    t_rec: float,
    t_verif: float,
    *,
    s_max: int = 1000,
) -> IntervalChoice:
    """Minimize ``E(s,T)/(sT)`` over integer ``s ∈ [1, s_max]``.

    The scan evaluates every candidate (the objective is O(1) per
    point), so the returned ``s`` is the true integer optimum within
    the bound.  For error-free chunks (``q = 1``) the overhead is
    decreasing in ``s`` and the bound itself is returned — checkpoints
    are pure overhead without failures.
    """
    if s_max < 1:
        raise ValueError(f"s_max must be >= 1, got {s_max}")
    best_s, best_h = 1, float("inf")
    for s in range(1, s_max + 1):
        h = frame_overhead(s, t, t_cp, t_rec, t_verif, q)
        if h < best_h:
            best_s, best_h = s, h
    return IntervalChoice(s=best_s, d=1, overhead=best_h)


def optimal_online_intervals(
    t_iter: float,
    lam: float,
    t_cp: float,
    t_rec: float,
    t_verif: float,
    *,
    d_max: int = 200,
    s_max: int = 200,
) -> IntervalChoice:
    """Jointly optimize ``(d, s)`` for ONLINE-DETECTION (Section 4.2.1).

    A chunk is ``d`` iterations (``T = d·Titer``) with success
    probability ``q = e^{−λT}``; the scan covers the integer grid.
    ``λ`` is the cumulative silent-error rate (arithmetic + memory:
    ``λ = λ_a + λ_m``, Section 4.2.1).
    """
    import math

    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")
    best = IntervalChoice(s=1, d=1, overhead=float("inf"))
    for d in range(1, d_max + 1):
        t = d * t_iter
        q = math.exp(-lam * t)
        choice = optimal_interval(t, q, t_cp, t_rec, t_verif, s_max=s_max)
        if choice.overhead < best.overhead:
            best = IntervalChoice(s=choice.s, d=d, overhead=choice.overhead)
    return best
