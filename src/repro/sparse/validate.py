"""Structural validation of CSR matrices.

Fault injection deliberately produces *invalid* structures; validation
is therefore a separate, explicitly-invoked step rather than an
invariant the container enforces on every operation.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = [
    "StructureError",
    "validate_structure",
    "is_structurally_valid",
    "structure_arrays_clean",
]


class StructureError(ValueError):
    """Raised when a CSR matrix violates a structural invariant."""


def validate_structure(a: "CSRMatrix") -> None:
    """Raise :class:`StructureError` on any violated CSR invariant.

    Checks, in order: array dtypes/lengths, row-pointer monotonicity and
    endpoints, column-index range, and finiteness of values.
    """
    nrows, ncols = a.shape
    if nrows < 0 or ncols < 0:
        raise StructureError(f"negative shape {a.shape}")
    if a.rowidx.shape != (nrows + 1,):
        raise StructureError(
            f"rowidx must have length nrows+1={nrows + 1}, got {a.rowidx.shape[0]}"
        )
    if a.val.shape != a.colid.shape:
        raise StructureError(
            f"val (len {a.val.shape[0]}) and colid (len {a.colid.shape[0]}) must match"
        )
    if a.rowidx[0] != 0:
        raise StructureError(f"rowidx[0] must be 0, got {a.rowidx[0]}")
    if a.rowidx[-1] != a.val.shape[0]:
        raise StructureError(
            f"rowidx[-1] must equal nnz={a.val.shape[0]}, got {a.rowidx[-1]}"
        )
    if np.any(np.diff(a.rowidx) < 0):
        bad = int(np.nonzero(np.diff(a.rowidx) < 0)[0][0])
        raise StructureError(f"rowidx decreases at row {bad}")
    if a.nnz:
        cmin, cmax = int(a.colid.min()), int(a.colid.max())
        if cmin < 0 or cmax >= ncols:
            raise StructureError(
                f"column indices out of range [0, {ncols}): min={cmin} max={cmax}"
            )
    if not np.all(np.isfinite(a.val)):
        raise StructureError("val contains non-finite entries")


def is_structurally_valid(a: "CSRMatrix") -> bool:
    """Boolean form of :func:`validate_structure`."""
    try:
        validate_structure(a)
    except StructureError:
        return False
    return True


def structure_arrays_clean(a: "CSRMatrix") -> bool:
    """Whether the *index* arrays are in-range and monotone.

    The exact precondition of the SpMxV fast path (skipping the
    defensive ``colid`` range scan and the ``rowidx`` clip/monotone
    guards): column indices in ``[0, ncols)``, row pointers
    non-decreasing with the pinned endpoints.  Unlike
    :func:`validate_structure` it says nothing about ``val`` — a
    corrupted *value* never changes which words the kernel reads.

    One vectorized O(nnz) pass; callers hoist it out of the per-call
    hot path by stamping the result with
    :meth:`~repro.sparse.csr.CSRMatrix.assume_clean_structure`.
    """
    nrows, ncols = a.shape
    if a.rowidx.shape != (nrows + 1,) or a.val.shape != a.colid.shape:
        return False
    if a.nnz and (int(a.colid.min()) < 0 or int(a.colid.max()) >= ncols):
        return False
    return bool(
        a.rowidx[0] == 0
        and a.rowidx[-1] == a.nnz
        and np.all(a.rowidx[1:] >= a.rowidx[:-1])
    )
