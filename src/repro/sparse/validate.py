"""Structural validation of CSR matrices.

Fault injection deliberately produces *invalid* structures; validation
is therefore a separate, explicitly-invoked step rather than an
invariant the container enforces on every operation.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["StructureError", "validate_structure", "is_structurally_valid"]


class StructureError(ValueError):
    """Raised when a CSR matrix violates a structural invariant."""


def validate_structure(a: "CSRMatrix") -> None:
    """Raise :class:`StructureError` on any violated CSR invariant.

    Checks, in order: array dtypes/lengths, row-pointer monotonicity and
    endpoints, column-index range, and finiteness of values.
    """
    nrows, ncols = a.shape
    if nrows < 0 or ncols < 0:
        raise StructureError(f"negative shape {a.shape}")
    if a.rowidx.shape != (nrows + 1,):
        raise StructureError(
            f"rowidx must have length nrows+1={nrows + 1}, got {a.rowidx.shape[0]}"
        )
    if a.val.shape != a.colid.shape:
        raise StructureError(
            f"val (len {a.val.shape[0]}) and colid (len {a.colid.shape[0]}) must match"
        )
    if a.rowidx[0] != 0:
        raise StructureError(f"rowidx[0] must be 0, got {a.rowidx[0]}")
    if a.rowidx[-1] != a.val.shape[0]:
        raise StructureError(
            f"rowidx[-1] must equal nnz={a.val.shape[0]}, got {a.rowidx[-1]}"
        )
    if np.any(np.diff(a.rowidx) < 0):
        bad = int(np.nonzero(np.diff(a.rowidx) < 0)[0][0])
        raise StructureError(f"rowidx decreases at row {bad}")
    if a.nnz:
        cmin, cmax = int(a.colid.min()), int(a.colid.max())
        if cmin < 0 or cmax >= ncols:
            raise StructureError(
                f"column indices out of range [0, {ncols}): min={cmin} max={cmax}"
            )
    if not np.all(np.isfinite(a.val)):
        raise StructureError("val contains non-finite entries")


def is_structurally_valid(a: "CSRMatrix") -> bool:
    """Boolean form of :func:`validate_structure`."""
    try:
        validate_structure(a)
    except StructureError:
        return False
    return True
