"""Sparse-matrix substrate: raw-array CSR storage, SpMxV kernels, generators.

The paper's ABFT scheme (Algorithm 2) operates directly on the three CSR
arrays ``Val``, ``Colid`` and ``Rowidx`` — both the checksums and the
fault injector need byte-level access to them — so this package provides
its own CSR container rather than hiding behind :mod:`scipy.sparse`.
A scipy bridge is included for interop and for cross-checking kernels.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv, spmv_reference
from repro.sparse.norms import norm1, norm_inf, column_sums, row_sums
from repro.sparse.validate import validate_structure, StructureError
from repro.sparse.generators import (
    laplacian_2d,
    laplacian_3d,
    anisotropic_2d,
    banded_spd,
    random_spd,
    graph_laplacian_spd,
    stencil_spd,
    diagonally_dominant_spd,
)
from repro.sparse.io import save_matrix_market, load_matrix_market

__all__ = [
    "CSRMatrix",
    "spmv",
    "spmv_reference",
    "norm1",
    "norm_inf",
    "column_sums",
    "row_sums",
    "validate_structure",
    "StructureError",
    "laplacian_2d",
    "laplacian_3d",
    "anisotropic_2d",
    "banded_spd",
    "random_spd",
    "graph_laplacian_spd",
    "stencil_spd",
    "diagonally_dominant_spd",
    "save_matrix_market",
    "load_matrix_market",
]
