"""Matrix-Market I/O for :class:`~repro.sparse.csr.CSRMatrix`.

The UFL collection the paper uses distributes matrices in Matrix-Market
format; supporting it lets users drop in the authors' exact matrices
when they have them on disk.
"""

from __future__ import annotations

import os

import scipy.io

from repro.sparse.csr import CSRMatrix

__all__ = ["save_matrix_market", "load_matrix_market"]


def save_matrix_market(a: CSRMatrix, path: str | os.PathLike) -> None:
    """Write ``a`` to ``path`` in Matrix-Market coordinate format."""
    scipy.io.mmwrite(os.fspath(path), a.to_scipy())


def load_matrix_market(path: str | os.PathLike) -> CSRMatrix:
    """Read a Matrix-Market file into a :class:`CSRMatrix`.

    Symmetric-storage files are expanded to full storage so the CSR
    arrays hold every logical nonzero (the ABFT checksums assume the
    explicit representation).
    """
    mat = scipy.io.mmread(os.fspath(path))
    return CSRMatrix.from_scipy(mat.tocsr())
