"""Synthetic SPD matrix generators.

The paper evaluates on nine SPD matrices from the UFL collection
(n between 17456 and 74752, density below 1e-2).  The collection is not
available offline, so these generators synthesize SPD matrices with
prescribed dimension and density; :mod:`repro.sim.matrices` registers a
nine-matrix suite whose ids, sizes and densities match the paper's
Table 1.  See ``docs/DESIGN.md`` §2 for why this substitution is
faithful: the experiments depend only on n, nnz (→ memory size M →
fault rate λ), SPD-ness (CG convergence) and sparsity (SpMxV cost).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator

__all__ = [
    "laplacian_2d",
    "laplacian_3d",
    "anisotropic_2d",
    "banded_spd",
    "random_spd",
    "graph_laplacian_spd",
    "stencil_spd",
    "diagonally_dominant_spd",
]


def laplacian_2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """Standard 5-point Laplacian on an ``nx × ny`` grid (SPD, n = nx·ny)."""
    ny = nx if ny is None else ny
    ex = np.ones(nx)
    ey = np.ones(ny)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    lap = sp.kron(sp.eye(ny), tx) + sp.kron(ty, sp.eye(nx))
    return CSRMatrix.from_scipy(lap)


def laplacian_3d(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid (SPD)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz

    def t(n: int) -> sp.spmatrix:
        e = np.ones(n)
        return sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1])

    ix, iy, iz = sp.eye(nx), sp.eye(ny), sp.eye(nz)
    lap = (
        sp.kron(iz, sp.kron(iy, t(nx)))
        + sp.kron(iz, sp.kron(t(ny), ix))
        + sp.kron(t(nz), sp.kron(iy, ix))
    )
    return CSRMatrix.from_scipy(lap)


def anisotropic_2d(nx: int, ny: int | None = None, eps: float = 0.1) -> CSRMatrix:
    """Anisotropic diffusion stencil ``-u_xx - eps·u_yy`` (SPD, harder for CG)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    ny = nx if ny is None else ny
    ex = np.ones(nx)
    ey = np.ones(ny)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    lap = sp.kron(sp.eye(ny), tx) + eps * sp.kron(ty, sp.eye(nx))
    return CSRMatrix.from_scipy(lap)


def banded_spd(n: int, bandwidth: int, seed: int | np.random.Generator = 0) -> CSRMatrix:
    """Random symmetric banded matrix made SPD by diagonal dominance.

    Off-diagonals within ``bandwidth`` get uniform(−1, 0) entries; the
    diagonal is set to (row |off-diag| sum) + 1, which guarantees strict
    diagonal dominance with positive diagonal, hence SPD.
    """
    if bandwidth < 1 or bandwidth >= n:
        raise ValueError(f"bandwidth must be in [1, n); got {bandwidth} for n={n}")
    rng = as_generator(seed)
    diags = []
    offsets = []
    for k in range(1, bandwidth + 1):
        band = -rng.uniform(0.0, 1.0, size=n - k)
        diags.append(band)
        offsets.append(k)
    upper = sp.diags(diags, offsets, shape=(n, n))
    symm = upper + upper.T
    row_abs = np.abs(symm).sum(axis=1).A1 if hasattr(np.abs(symm).sum(axis=1), "A1") else np.asarray(np.abs(symm).sum(axis=1)).ravel()
    mat = symm + sp.diags(row_abs + 1.0)
    return CSRMatrix.from_scipy(mat)


def random_spd(
    n: int,
    density: float,
    seed: int | np.random.Generator = 0,
    *,
    shift: float = 1.0,
) -> CSRMatrix:
    """Random sparse SPD matrix of prescribed size and approximate density.

    A random sparse symmetric pattern with uniform(−1, 0) off-diagonal
    entries is shifted to strict diagonal dominance:
    ``A = S + diag(Σ_j |s_ij| + shift)``.  The resulting density matches
    the request to within the duplicate-collision rate of the sampler.
    """
    if not 0 < density <= 1:
        raise ValueError(f"density must lie in (0, 1], got {density}")
    rng = as_generator(seed)
    # Target nnz for the symmetric off-diagonal part (diagonal is full).
    target_offdiag = max(0, int(density * n * n) - n)
    m = target_offdiag // 2  # strictly-upper entries to sample
    if m > 0:
        rows = rng.integers(0, n - 1, size=m)
        cols = rng.integers(1, n, size=m)
        swap = cols <= rows
        rows[swap], cols[swap] = cols[swap] - 1, rows[swap] + 1
        keep = rows < cols
        rows, cols = rows[keep], cols[keep]
        vals = -rng.uniform(0.0, 1.0, size=rows.size)
        upper = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        upper.sum_duplicates()
        symm = upper + upper.T
    else:
        symm = sp.csr_matrix((n, n))
    row_abs = np.asarray(np.abs(symm).sum(axis=1)).ravel()
    mat = symm + sp.diags(row_abs + shift)
    return CSRMatrix.from_scipy(mat)


def graph_laplacian_spd(
    n: int,
    avg_degree: int = 6,
    seed: int | np.random.Generator = 0,
    *,
    shift: float = 1.0,
) -> CSRMatrix:
    """Shifted Laplacian ``L + shift·I`` of a random regular-ish graph.

    Graph Laplacians are the paper's own example of matrices with zero
    column sums (Section 3.2) — they exercise the checksum-shift logic.
    The shift makes the matrix SPD rather than merely PSD.

    Uses :mod:`networkx` for small n and a fast configuration-style
    sampler for large n.
    """
    rng = as_generator(seed)
    if n <= 2000:
        import networkx as nx

        d = min(avg_degree, n - 1)
        if (d * n) % 2:
            d += 1 if d + 1 < n else -1
        g = nx.random_regular_graph(d, n, seed=int(rng.integers(2**31)))
        lap = nx.laplacian_matrix(g).astype(np.float64)
        mat = lap + shift * sp.eye(n)
        return CSRMatrix.from_scipy(mat)
    # Large n: sample random edges directly.
    m = n * avg_degree // 2
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    lo, hi = np.minimum(rows, cols), np.maximum(rows, cols)
    adj = sp.coo_matrix((np.ones(lo.size), (lo, hi)), shape=(n, n)).tocsr()
    adj.data[:] = 1.0  # collapse duplicate edges
    adj = adj + adj.T
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg) - adj
    return CSRMatrix.from_scipy(lap + shift * sp.eye(n))


def stencil_spd(
    n_target: int,
    *,
    kind: str = "box",
    radius: int = 1,
    shift: float = 1e-3,
    anisotropy: float = 1.0,
) -> CSRMatrix:
    """Wide-stencil 2-D diffusion operator: an SPD matrix with a
    continuously spread spectrum and controllable density.

    On a ``⌈√n⌉ × ⌈√n⌉`` grid, each point couples to neighbours within
    Chebyshev ``radius`` (``kind="box"``: the full (2r+1)²−1
    neighbourhood, ≈ (2r+1)² nnz/row; ``kind="cross"``: axis-aligned
    only, 4r+1 nnz/row) with weight ``−1/dist²`` (y-distances scaled by
    ``anisotropy``); the diagonal is the negated off-diagonal row sum
    plus ``shift``.  Row sums equal ``shift``, so the matrix is a
    (strictly) shifted Laplacian — SPD with spectrum filling
    ``[≈shift, O(1)]`` like a discretized elliptic PDE, which is what
    makes CG take ``O(grid side)`` iterations instead of the handful a
    diagonally dominant random matrix needs.  This mirrors the UFL
    matrices of the paper's Table 1, which are predominantly PDE
    discretizations.
    """
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    if kind not in ("box", "cross"):
        raise ValueError(f"kind must be 'box' or 'cross', got {kind!r}")
    if shift <= 0:
        raise ValueError(f"shift must be positive, got {shift}")
    side = max(2, int(round(n_target**0.5)))
    n = side * side

    offsets: list[tuple[int, int, float]] = []
    for dx in range(-radius, radius + 1):
        for dy in range(-radius, radius + 1):
            if dx == 0 and dy == 0:
                continue
            if kind == "cross" and dx != 0 and dy != 0:
                continue
            dist2 = dx * dx + (dy * anisotropy) ** 2
            offsets.append((dx, dy, -1.0 / dist2))

    ii: list[np.ndarray] = []
    jj: list[np.ndarray] = []
    vv: list[np.ndarray] = []
    gx, gy = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    gx, gy = gx.ravel(), gy.ravel()
    idx = gx * side + gy
    for dx, dy, w in offsets:
        ok = (gx + dx >= 0) & (gx + dx < side) & (gy + dy >= 0) & (gy + dy < side)
        src = idx[ok]
        dst = (gx[ok] + dx) * side + (gy[ok] + dy)
        ii.append(src)
        jj.append(dst)
        vv.append(np.full(src.size, w))
    rows = np.concatenate(ii)
    cols = np.concatenate(jj)
    vals = np.concatenate(vv)
    off = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    diag = -np.asarray(off.sum(axis=1)).ravel() + shift
    return CSRMatrix.from_scipy(off + sp.diags(diag))


def diagonally_dominant_spd(
    n: int, nnz_per_row: int = 8, seed: int | np.random.Generator = 0
) -> CSRMatrix:
    """SPD matrix with roughly ``nnz_per_row`` nonzeros per row.

    Convenience wrapper over :func:`random_spd` parameterized by row
    count rather than global density.
    """
    density = min(1.0, nnz_per_row / n)
    return random_spd(n, density, seed)
