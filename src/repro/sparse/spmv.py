"""Sparse matrix–vector product kernels.

Two implementations of ``y = A @ x``:

- :func:`spmv` — the production kernel.  It reduces ``val * x[colid]``
  per row with :func:`numpy.add.reduceat`, which is the standard
  vectorization of a CSR row loop (see the scientific-python optimizing
  guide: vectorize the loop, avoid copies, operate on contiguous data).
- :func:`spmv_reference` — a pure-Python row loop that mirrors the
  paper's Algorithm 2 line-by-line.  It is the kernel the ABFT proofs
  reason about and is kept as the oracle the vectorized kernel is
  cross-checked against in the tests.

Both kernels read *exactly* the bytes stored in the CSR arrays: no
canonicalization, no duplicate folding.  That property is what lets the
fault-injection study corrupt ``Val``/``Colid``/``Rowidx`` and observe
the corruption flow into ``y``.

:func:`spmv` is also the dispatch point of the pluggable kernel axis:
``backend=`` hands the product to a registered
:class:`repro.backends.KernelBackend` (e.g. ``"scipy"``), which must
route guarded (non-``structure_clean``) matrices back here — the
wild-read emulation below is the single definition of the fault
physics.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["spmv", "spmv_reference"]


def spmv(
    a: CSRMatrix,
    x: np.ndarray,
    *,
    out: "np.ndarray | None" = None,
    scratch: "np.ndarray | None" = None,
    backend: "object | None" = None,
) -> np.ndarray:
    """Vectorized CSR SpMxV.

    Parameters
    ----------
    a:
        The matrix.  May be structurally corrupted (out-of-range column
        indices are clipped into range to emulate a wild read, matching
        what the reference kernel would fault on — see Notes).
    x:
        Dense input vector of length ``a.ncols``.
    out:
        Optional preallocated output vector (``float64``, length
        ``a.nrows``, must not alias ``x``).  Overwritten and returned.
    scratch:
        Optional preallocated ``float64`` buffer of at least ``a.nnz``
        elements for the per-nonzero products — the solver workspace
        passes one so the hot loop allocates nothing.
    backend:
        Optional kernel backend — a registered name (``"scipy"``,
        ``"dense"``) or a :class:`repro.backends.KernelBackend`
        instance.  ``None`` / ``"reference"`` runs this function's own
        kernel (the bit-identity default); any other backend receives
        the call verbatim and is contractually required to route
        non-``structure_clean`` matrices back here, so the fault
        physics below is backend-invariant.

    Notes
    -----
    When a bit flip corrupts ``colid`` or ``rowidx``, a C kernel would
    read out-of-bounds memory.  To keep the simulation memory-safe while
    still producing a *wrong* answer for ABFT to catch, indices are
    taken modulo the valid range.  A flag in the result is unnecessary:
    ABFT's checksums are the detection mechanism under study.

    When the matrix carries the
    :attr:`~repro.sparse.csr.CSRMatrix.structure_clean` stamp, the
    defensive work (``colid`` range scan, ``rowidx`` clipping and the
    monotone-segment guard) is skipped: the stamp certifies exactly the
    invariants those guards probe, so the result is bit-identical.
    """
    if backend is not None:
        if type(backend) is not str:
            # Hot path: the engine resolves names once and hands the
            # instance down, so per-product calls skip the registry
            # (the stock reference backend resolves to None upstream;
            # a reference *instance* passed here just round-trips).
            return backend.spmv(a, x, out=out, scratch=scratch)
        from repro.backends import resolve_backend

        be = resolve_backend(backend)
        if be is not None:
            return be.spmv(a, x, out=out, scratch=scratch)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.ncols,):
        raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
    n = a.nrows
    nnz = a.nnz
    if out is None:
        y = np.zeros(n, dtype=np.float64) if nnz == 0 else np.empty(n, dtype=np.float64)
    else:
        y = out
    if nnz == 0:
        if out is not None:
            y[:] = 0.0
        return y

    if a.structure_clean:
        # Fast path: indices certified in-range and monotone, so the
        # scan, the clips and the overshoot repair are all no-ops by
        # construction — same floats, none of the guard work.
        rowptr = a.rowidx
        with np.errstate(over="ignore", invalid="ignore"):
            if scratch is None:
                products = a.val * x[a.colid]
            else:
                # mode="clip" skips the per-element bounds check; the
                # structure_clean stamp guarantees it never clips.
                products = np.take(x, a.colid, out=scratch[:nnz], mode="clip")
                np.multiply(a.val, products, out=products)
        starts = rowptr[:-1]
        if a._rows_nonempty:  # hoisted with the stamp: no per-call guard
            np.add.reduceat(products, starts, out=y)
            return y
        y[:] = 0.0
        nonempty = rowptr[1:] > starts
        if nonempty.any():
            y[nonempty] = np.add.reduceat(products, starts[nonempty])
        return y
    y[:] = 0.0

    colid = a.colid
    # Memory-safe emulation of wild reads caused by corrupted indices.
    if colid.size and (colid.min() < 0 or colid.max() >= a.ncols):
        colid = np.mod(colid, a.ncols)
    # Corrupted values can overflow to ±inf — that is the silent error
    # propagating, not a kernel bug; ABFT flags the non-finite result.
    with np.errstate(over="ignore", invalid="ignore"):
        products = a.val * x[colid]

    rowptr = a.rowidx
    starts = np.clip(rowptr[:-1], 0, a.nnz)
    ends = np.clip(rowptr[1:], 0, a.nnz)
    # reduceat needs monotone segments; a corrupted rowidx can violate
    # that, in which case we fall back to the (safe) reference loop.
    if np.all(starts[1:] >= starts[:-1]) and np.all(ends >= starts):
        nonempty = ends > starts
        if nonempty.any():
            seg = np.add.reduceat(products, starts[nonempty])
            # reduceat sums from each start to the next start; trim the
            # tail of each segment that spills past its row's end.
            ends_ne = ends[nonempty]
            starts_ne = starts[nonempty]
            next_starts = np.empty_like(starts_ne)
            next_starts[:-1] = starts_ne[1:]
            next_starts[-1] = a.nnz
            overshoot = next_starts - ends_ne
            if np.any(overshoot > 0):
                # rare (only for corrupted rowidx); correct per segment
                idx = np.nonzero(overshoot > 0)[0]
                for k in idx:
                    seg[k] = products[starts_ne[k] : ends_ne[k]].sum()
            y[nonempty] = seg
        return y
    looped = _spmv_loop(a.val, colid, rowptr, x, n, a.nnz)
    if out is None:
        return looped
    out[:] = looped
    return out


def _spmv_loop(
    val: np.ndarray,
    colid: np.ndarray,
    rowidx: np.ndarray,
    x: np.ndarray,
    n: int,
    nnz: int,
) -> np.ndarray:
    """Row-loop kernel tolerant of corrupted row pointers."""
    y = np.zeros(n, dtype=np.float64)
    # One vectorized clip + tolist instead of two np.clip scalar
    # dispatches per row; the per-row dot products are unchanged.
    bounds = np.clip(rowidx, 0, nnz).tolist()
    for i in range(n):
        lo = bounds[i]
        hi = bounds[i + 1]
        if hi > lo:
            y[i] = float(val[lo:hi] @ x[colid[lo:hi]])
    return y


def spmv_reference(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Pure-Python row-loop SpMxV mirroring Algorithm 2's inner loop.

    Used as the oracle in tests and by the line-by-line protected
    kernel; orders of magnitude slower than :func:`spmv`, so only call
    it on small matrices.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.ncols,):
        raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
    n = a.nrows
    nnz = a.nnz
    y = np.zeros(n, dtype=np.float64)
    for i in range(n):
        yi = 0.0
        lo = int(np.clip(a.rowidx[i], 0, nnz))
        hi = int(np.clip(a.rowidx[i + 1], 0, nnz))
        for j in range(lo, hi):
            ind = int(a.colid[j]) % a.ncols
            yi += a.val[j] * x[ind]
        y[i] = yi
    return y
