"""Matrix norms and checksum-adjacent reductions on CSR matrices.

The Theorem-2 tolerance needs ``‖A‖₁ = max_j Σ_i |a_ij|`` (Eq. 8 of the
paper) and the ABFT checksums need exact column sums; both are simple
scatter-reductions over the CSR arrays.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["column_sums", "row_sums", "norm1", "norm_inf", "max_row_nnz", "max_col_nnz"]


def column_sums(a: CSRMatrix, weights: np.ndarray | None = None) -> np.ndarray:
    """Column sums ``c_j = Σ_i w_i a_ij`` (unweighted when ``weights`` is None).

    This is the checksum primitive ``wᵀA`` of the paper: a row-weighted
    column reduction computed with one scatter-add over the nonzeros.
    """
    n_rows, n_cols = a.shape
    out = np.zeros(n_cols, dtype=np.float64)
    if a.nnz == 0:
        return out
    if weights is None:
        contrib = a.val
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_rows,):
            raise ValueError(f"weights must have shape ({n_rows},), got {weights.shape}")
        row_of_nnz = np.repeat(np.arange(n_rows), np.diff(a.rowidx))
        contrib = a.val * weights[row_of_nnz]
    np.add.at(out, a.colid, contrib)
    return out


def row_sums(a: CSRMatrix) -> np.ndarray:
    """Row sums ``r_i = Σ_j a_ij`` via segment reduction."""
    out = np.zeros(a.nrows, dtype=np.float64)
    starts = a.rowidx[:-1]
    nonempty = a.rowidx[1:] > starts
    if nonempty.any():
        out[nonempty] = np.add.reduceat(a.val, starts[nonempty])
    return out


def norm1(a: CSRMatrix) -> float:
    """``‖A‖₁`` — maximum absolute column sum (paper Eq. 8)."""
    n_cols = a.ncols
    sums = np.zeros(n_cols, dtype=np.float64)
    np.add.at(sums, a.colid, np.abs(a.val))
    return float(sums.max(initial=0.0))


def norm_inf(a: CSRMatrix) -> float:
    """``‖A‖∞`` — maximum absolute row sum."""
    out = np.zeros(a.nrows, dtype=np.float64)
    starts = a.rowidx[:-1]
    nonempty = a.rowidx[1:] > starts
    if nonempty.any():
        out[nonempty] = np.add.reduceat(np.abs(a.val), starts[nonempty])
    return float(out.max(initial=0.0))


def max_row_nnz(a: CSRMatrix) -> int:
    """Maximum nonzeros in any row."""
    return int(np.diff(a.rowidx).max(initial=0))


def max_col_nnz(a: CSRMatrix) -> int:
    """Maximum nonzeros in any column (the n' of the paper's Sec. 5.1).

    The paper bounds the relative error of computing ``‖A‖₁`` by
    ``n' u`` where ``n'`` is the maximum column count; for the sparse
    matrices studied, n' is small so the norm is accurate.
    """
    if a.nnz == 0:
        return 0
    counts = np.bincount(a.colid, minlength=a.ncols)
    return int(counts.max())
