"""Compressed Sparse Row matrix with exposed raw arrays.

The container mirrors the storage the paper assumes (Saad, Sec. 3.4):

- ``val``    — nonzero values, length nnz, ``float64``;
- ``colid``  — column index of each nonzero, length nnz, ``int64``;
- ``rowidx`` — row pointers, length n+1, ``int64`` (``rowidx[i]`` is the
  offset of row ``i``'s first nonzero; ``rowidx[n] == nnz``).

Unlike :class:`scipy.sparse.csr_matrix`, nothing here re-canonicalizes
behind your back: ABFT correction mutates single entries in place, and
the fault injector flips raw bits in all three arrays, so the arrays the
user sees are exactly the bytes the kernels read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    import scipy.sparse

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A square-or-rectangular CSR matrix backed by three NumPy arrays.

    Parameters
    ----------
    val, colid, rowidx:
        The CSR arrays.  ``val`` is coerced to ``float64`` and the index
        arrays to ``int64``; copies are made only if coercion requires it.
    shape:
        ``(nrows, ncols)``.  ``nrows`` must equal ``len(rowidx) - 1``.
    check:
        When true (default) the structure is validated on construction.
        Kernels that deliberately build *corrupted* matrices (fault
        injection tests) pass ``check=False``.
    """

    __slots__ = (
        "val",
        "colid",
        "rowidx",
        "shape",
        "_structure_clean",
        "_rows_nonempty",
        "__weakref__",
    )

    def __init__(
        self,
        val: np.ndarray,
        colid: np.ndarray,
        rowidx: np.ndarray,
        shape: tuple[int, int],
        *,
        check: bool = True,
    ) -> None:
        self.val = np.ascontiguousarray(val, dtype=np.float64)
        self.colid = np.ascontiguousarray(colid, dtype=np.int64)
        self.rowidx = np.ascontiguousarray(rowidx, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._structure_clean = False
        self._rows_nonempty: "bool | None" = None
        if check:
            from repro.sparse.validate import validate_structure

            validate_structure(self)

    # ------------------------------------------------------------------
    # structural-cleanliness flag (perf fast path)
    # ------------------------------------------------------------------
    @property
    def structure_clean(self) -> bool:
        """Whether the index arrays are *known* in-range and monotone.

        ``False`` means "unknown", not "corrupted": kernels must then
        fall back to their defensive scans (the seed behaviour).  The
        flag is opt-in — nothing sets it implicitly, because the fault
        study corrupts ``colid``/``rowidx`` in place and a stale
        ``True`` would skip the wild-read emulation.  The resilience
        engine maintains it for its live matrix copy (set after one
        up-front structural check, cleared by the injector whenever an
        index array is struck).
        """
        return self._structure_clean

    def assume_clean_structure(self) -> None:
        """Declare the index arrays in-range and monotone.

        Caller contract: only after a successful structural check (see
        :func:`repro.sparse.validate.structure_arrays_clean`).  Anyone
        mutating ``colid``/``rowidx`` afterwards must call
        :meth:`mark_structure_dirty`.
        """
        self._structure_clean = True
        # A clean rowidx is immutable until the flag drops, so the
        # "every row nonempty" fact (the SpMxV fast path's remaining
        # O(n) guard) can be hoisted here too.
        self._rows_nonempty = (
            bool(np.all(self.rowidx[1:] > self.rowidx[:-1])) if self.nnz else False
        )

    def mark_structure_dirty(self) -> None:
        """Revoke :meth:`assume_clean_structure` (index array mutated)."""
        self._structure_clean = False
        self._rows_nonempty = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.val.shape[0])

    @property
    def density(self) -> float:
        """nnz / (nrows * ncols)."""
        return self.nnz / (self.nrows * self.ncols)

    @property
    def memory_words(self) -> int:
        """Number of 64-bit words in the raw representation.

        This is the ``M`` of the paper's fault model (λ_m = M · λ_word):
        every stored value, column index and row pointer is one
        corruptible word.
        """
        return self.val.size + self.colid.size + self.rowidx.size

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(cls, mat: "scipy.sparse.spmatrix") -> "CSRMatrix":
        """Build from any scipy sparse matrix (converted to CSR)."""
        import scipy.sparse as sp

        csr = sp.csr_matrix(mat)
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            csr.data.astype(np.float64),
            csr.indices.astype(np.int64),
            csr.indptr.astype(np.int64),
            csr.shape,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={dense.ndim}")
        nrows, _ = dense.shape
        rows, cols = np.nonzero(dense)
        val = dense[rows, cols]
        rowidx = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(rowidx, rows + 1, 1)
        np.cumsum(rowidx, out=rowidx)
        return cls(val, cols.astype(np.int64), rowidx, dense.shape)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSRMatrix":
        """Build from coordinate triplets (duplicates are summed)."""
        import scipy.sparse as sp

        coo = sp.coo_matrix((vals, (rows, cols)), shape=shape)
        return cls.from_scipy(coo)

    def to_scipy(self) -> "scipy.sparse.csr_matrix":
        """Convert to a scipy CSR matrix (arrays are copied)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.val.copy(), self.colid.copy(), self.rowidx.copy()), shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small matrices / tests only).

        Duplicate entries are summed, matching the row-loop semantics.
        """
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.nrows), self.row_nnz())
        np.add.at(out, (rows, self.colid), self.val)
        return out

    def copy(self) -> "CSRMatrix":
        """Deep copy of all three arrays (used by checkpointing).

        The :attr:`structure_clean` flag is inherited: the copy holds
        the same bytes, so whatever was known about the original's
        index arrays holds for the copy.
        """
        dup = CSRMatrix(
            self.val.copy(), self.colid.copy(), self.rowidx.copy(), self.shape, check=False
        )
        dup._structure_clean = self._structure_clean
        dup._rows_nonempty = self._rows_nonempty
        return dup

    # ------------------------------------------------------------------
    # row access and arithmetic
    # ------------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return views ``(colids, values)`` of row ``i``'s nonzeros."""
        lo, hi = self.rowidx[i], self.rowidx[i + 1]
        return self.colid[lo:hi], self.val[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Vector of per-row nonzero counts."""
        return np.diff(self.rowidx)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (missing entries are zero;
        duplicates are summed).

        Vectorized — this sits on the Jacobi-preconditioner setup path
        of FT-PCG, where a pure-Python row loop would dominate setup
        for large matrices.
        """
        n = min(self.nrows, self.ncols)
        diag = np.zeros(n, dtype=np.float64)
        rows = np.repeat(np.arange(self.nrows), self.row_nnz())
        on_diag = (rows == self.colid) & (rows < n)
        np.add.at(diag, rows[on_diag], self.val[on_diag])
        return diag

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Unprotected SpMxV ``y = A @ x`` (vectorized kernel)."""
        from repro.sparse.spmv import spmv

        return spmv(self, x)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def transpose(self) -> "CSRMatrix":
        """Return Aᵀ as a new CSR matrix."""
        return CSRMatrix.from_scipy(self.to_scipy().T)

    # ------------------------------------------------------------------
    # comparison / repr
    # ------------------------------------------------------------------
    def equals(self, other: "CSRMatrix", *, rtol: float = 0.0, atol: float = 0.0) -> bool:
        """Structural + numerical equality of the raw representation."""
        return (
            self.shape == other.shape
            and np.array_equal(self.rowidx, other.rowidx)
            and np.array_equal(self.colid, other.colid)
            and np.allclose(self.val, other.val, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )
