"""Regroup raw per-task records into the paper's result shapes.

The executor hands back one flat record per task; the experiment
drivers need :class:`~repro.sim.results.Table1Row` and
:class:`~repro.sim.results.Figure1Point` lists identical to what their
serial loops used to build.  The aggregators here reproduce those
loops' grouping, ordering and tie-breaking exactly:

- Table 1 groups the interval sweep by (matrix, method, scheme) in
  task order and picks ``s*`` as the argmin of mean time with
  first-wins ties — the same resolution as ``min()`` over the serial
  sweep dict, whose insertion order was the sorted grid;
- Figure 1 is one point per task, in task order.

Records may come fresh from workers or from a JSONL store; both paths
produce bit-identical aggregates because floats survive the JSON
round-trip exactly.
"""

from __future__ import annotations

from repro.campaign.spec import TaskSpec
from repro.sim.engine import RunStatistics
from repro.sim.results import Figure1Point, Table1Row

__all__ = ["stats_from_record", "aggregate_table1", "aggregate_figure1"]


def stats_from_record(record: dict) -> RunStatistics:
    """Rehydrate a record's ``"stats"`` payload into RunStatistics."""
    return RunStatistics(**record["stats"])


def _paired(tasks: "list[TaskSpec]", records: "list[dict]", experiment: str):
    if len(tasks) != len(records):
        raise ValueError(f"{len(tasks)} tasks but {len(records)} records")
    for task, rec in zip(tasks, records):
        if rec is None:
            raise ValueError(f"missing record for task {task.task_hash()}")
        if task.experiment != experiment:
            raise ValueError(
                f"expected {experiment!r} tasks, got {task.experiment!r}"
            )
        yield task, rec


def aggregate_table1(
    tasks: "list[TaskSpec]", records: "list[dict]"
) -> "list[Table1Row]":
    """Fold an interval-sweep campaign into Table-1 rows.

    One row per (matrix, method, scheme) group, in first-appearance
    order.  ``s*`` is the interval with the smallest mean time; ``s̃``
    and its measured time come from the group's ``s_model``, which must
    be one of the swept intervals.
    """
    groups: "dict[tuple[int, str, str], list[tuple[TaskSpec, dict]]]" = {}
    for task, rec in _paired(tasks, records, "table1"):
        groups.setdefault((task.uid, task.method, task.scheme), []).append((task, rec))
    rows: "list[Table1Row]" = []
    for (uid, method, scheme), pairs in groups.items():
        sweep = {t.s: stats_from_record(r) for t, r in pairs}
        first_task, first_rec = pairs[0]
        s_model = first_task.s_model
        if s_model not in sweep:
            raise ValueError(
                f"matrix {uid} / {method} / {scheme}: model interval {s_model} "
                f"missing from sweep {sorted(sweep)}"
            )
        s_best = min(sweep, key=lambda s: sweep[s].mean_time)
        rows.append(
            Table1Row(
                uid=uid,
                n=first_rec["n"],
                density=first_rec["density"],
                scheme=scheme,
                s_model=s_model,
                time_model=sweep[s_model].mean_time,
                s_best=s_best,
                time_best=sweep[s_best].mean_time,
                reps=first_task.reps,
                method=method,
            )
        )
    return rows


def aggregate_figure1(
    tasks: "list[TaskSpec]", records: "list[dict]"
) -> "list[Figure1Point]":
    """Fold a scheme-comparison campaign into Figure-1 points (one per
    task, task order)."""
    points: "list[Figure1Point]" = []
    for task, rec in _paired(tasks, records, "figure1"):
        stats = stats_from_record(rec)
        points.append(
            Figure1Point(
                uid=task.uid,
                scheme=task.scheme,
                alpha=task.alpha,
                mean_time=stats.mean_time,
                sem_time=stats.sem_time,
                s_used=task.s,
                d_used=task.d,
                method=task.method,
            )
        )
    return points
