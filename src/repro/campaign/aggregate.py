"""Regroup raw per-task records into the paper's result shapes.

The executor hands back one flat record per task; the experiment
drivers need :class:`~repro.sim.results.Table1Row` and
:class:`~repro.sim.results.Figure1Point` lists identical to what their
serial loops used to build.  The aggregators here reproduce those
loops' grouping, ordering and tie-breaking exactly:

- Table 1 groups the interval sweep by (matrix, method, scheme) in
  task order and picks ``s*`` as the argmin of mean time with
  first-wins ties — the same resolution as ``min()`` over the serial
  sweep dict, whose insertion order was the sorted grid;
- Figure 1 is one point per task, in task order.

Records may come fresh from workers or from any result store backend
(:mod:`repro.store`); all paths produce bit-identical aggregates
because floats survive the JSON round-trip exactly and every fold is
ordered by the *task list*, never by store layout.

Aggregation is *streaming*: the folds consume one record at a time and
keep only the few scalars a row/point needs, so they work over
``iter_records()`` of a partial multi-GB store without materializing
it — that is what :func:`aggregate_table1_store` /
:func:`aggregate_figure1_store` do, matching records to tasks by
content hash as they stream past.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.campaign.spec import TaskSpec
from repro.sim.engine import RunStatistics
from repro.sim.results import Figure1Point, Table1Row

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.protocol import StoreBackend

__all__ = [
    "stats_from_record",
    "aggregate_table1",
    "aggregate_figure1",
    "aggregate_table1_store",
    "aggregate_figure1_store",
    "records_for_tasks",
]


def stats_from_record(record: dict) -> RunStatistics:
    """Rehydrate a record's ``"stats"`` payload into RunStatistics.

    Records written before the adaptive layer existed lack the CI
    fields; the dataclass defaults (``None``) absorb them.
    """
    return RunStatistics(**record["stats"])


def _stats_ci(stats: RunStatistics) -> "tuple[float, float] | None":
    """CI bounds on the mean time for a record's statistics.

    Prefers the bounds stored by the engine (fixed runs carry a 95% CI,
    adaptive runs the CI at their policy's confidence); records from
    before the adaptive layer derive a 95% CI from std/reps.  ``None``
    when ``reps < 2`` — a single repetition has no error estimate.
    """
    if stats.ci_low is not None and stats.ci_high is not None:
        return (stats.ci_low, stats.ci_high)
    if stats.reps > 1:
        from repro.adaptive import ci_bounds
        from repro.sim.engine import DEFAULT_CONFIDENCE

        return ci_bounds(
            stats.mean_time, stats.std_time, stats.reps, DEFAULT_CONFIDENCE
        )
    return None


def _paired(tasks: "list[TaskSpec]", records: "Iterable[dict]", experiment: str):
    records = list(records)
    if len(tasks) != len(records):
        raise ValueError(f"{len(tasks)} tasks but {len(records)} records")
    for task, rec in zip(tasks, records):
        if rec is None:
            raise ValueError(f"missing record for task {task.task_hash()}")
        if rec.get("kind") == "quarantine":
            raise ValueError(
                f"task {task.task_hash()[:16]}… was quarantined after "
                f"{rec.get('attempts')} attempt(s) ({rec.get('error')}); "
                "aggregate the store with partial=True, or clear it with "
                "`repro store compact --drop-quarantined` and re-run"
            )
        if task.experiment != experiment:
            raise ValueError(
                f"expected {experiment!r} tasks, got {task.experiment!r}"
            )
        yield task, rec


class _Table1Fold:
    """Incremental Table-1 fold: one (task, record) pair at a time.

    Holds per group only what a :class:`Table1Row` needs — the
    ``s → mean_time`` sweep and the first task/record's metadata —
    never the record payloads.  Pair order is the task list's order,
    so ties and group order are independent of where records came
    from.
    """

    def __init__(self) -> None:
        self._groups: "dict[tuple, dict]" = {}

    def add(self, task: TaskSpec, rec: dict) -> None:
        key = (task.uid, task.method, task.scheme)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = {
                "sweep": {},
                "extras": {},
                "n": rec["n"],
                "density": rec["density"],
                "s_model": task.s_model,
                "reps": task.reps,
            }
        # Duplicate s within a group keeps the last pair, matching the
        # historical dict-of-stats construction.
        group["sweep"][task.s] = rec["stats"]["mean_time"]
        stats = stats_from_record(rec)
        group["extras"][task.s] = (_stats_ci(stats), stats.reps)

    def rows(self) -> "list[Table1Row]":
        rows: "list[Table1Row]" = []
        for (uid, method, scheme), g in self._groups.items():
            sweep = g["sweep"]
            s_model = g["s_model"]
            if s_model not in sweep:
                raise ValueError(
                    f"matrix {uid} / {method} / {scheme}: model interval "
                    f"{s_model} missing from sweep {sorted(sweep)}"
                )
            s_best = min(sweep, key=lambda s: sweep[s])
            ci = g["extras"][s_model][0]
            rows.append(
                Table1Row(
                    uid=uid,
                    n=g["n"],
                    density=g["density"],
                    scheme=scheme,
                    s_model=s_model,
                    time_model=sweep[s_model],
                    s_best=s_best,
                    time_best=sweep[s_best],
                    reps=g["reps"],
                    method=method,
                    ci_low=ci[0] if ci else None,
                    ci_high=ci[1] if ci else None,
                    reps_used=sum(used for _, used in g["extras"].values()),
                    reps_cap=g["reps"] * len(g["extras"]),
                )
            )
        return rows


def aggregate_table1(
    tasks: "list[TaskSpec]", records: "Iterable[dict]"
) -> "list[Table1Row]":
    """Fold an interval-sweep campaign into Table-1 rows.

    One row per (matrix, method, scheme) group, in first-appearance
    order.  ``s*`` is the interval with the smallest mean time; ``s̃``
    and its measured time come from the group's ``s_model``, which must
    be one of the swept intervals.
    """
    fold = _Table1Fold()
    for task, rec in _paired(tasks, records, "table1"):
        fold.add(task, rec)
    return fold.rows()


def aggregate_figure1(
    tasks: "list[TaskSpec]", records: "Iterable[dict]"
) -> "list[Figure1Point]":
    """Fold a scheme-comparison campaign into Figure-1 points (one per
    task, task order)."""
    points: "list[Figure1Point]" = []
    for task, rec in _paired(tasks, records, "figure1"):
        points.append(_figure1_point(task, rec))
    return points


def _figure1_point(task: TaskSpec, rec: dict) -> Figure1Point:
    stats = stats_from_record(rec)
    ci = _stats_ci(stats)
    return Figure1Point(
        uid=task.uid,
        scheme=task.scheme,
        alpha=task.alpha,
        mean_time=stats.mean_time,
        # A single repetition has no error estimate: None renders as
        # "±n/a" (a 0.0 here would claim a *zero* standard error).
        sem_time=stats.sem_time if stats.reps > 1 else None,
        s_used=task.s,
        d_used=task.d,
        method=task.method,
        ci_low=ci[0] if ci else None,
        ci_high=ci[1] if ci else None,
        reps_used=stats.reps,
        reps_cap=task.reps,
    )


# ----------------------------------------------------------------------
# streaming over a store
# ----------------------------------------------------------------------
def records_for_tasks(
    tasks: "list[TaskSpec]",
    store: "StoreBackend | str",
    *,
    partial: bool = False,
) -> "list[dict | None]":
    """Stream a store once and return records aligned with ``tasks``.

    Only records the tasks name are kept (memory is proportional to
    the task list, not the store); duplicates resolve last-wins.  A
    task without a record raises ``ValueError`` unless ``partial=True``
    leaves a ``None`` hole — the tolerance a report over a
    still-running or crashed campaign needs.  ``kind="quarantine"``
    records (:mod:`repro.chaos`) carry no result payload, so they fold
    like missing records: a hole under ``partial=True``, an error —
    naming the quarantine — otherwise.
    """
    from repro.store import open_store

    store = open_store(store)
    wanted: "dict[str, list[int]]" = {}
    for i, task in enumerate(tasks):
        wanted.setdefault(task.task_hash(), []).append(i)
    out: "list[dict | None]" = [None] * len(tasks)
    for rec in store.iter_records():
        slots = wanted.get(rec.get("hash"))
        if slots is not None:
            for i in slots:
                out[i] = rec  # duplicates: last wins
    quarantined = 0
    for i, rec in enumerate(out):
        if rec is not None and rec.get("kind") == "quarantine":
            out[i] = None
            quarantined += 1
    if not partial:
        missing = [tasks[i].task_hash() for i, r in enumerate(out) if r is None]
        if missing:
            raise ValueError(
                f"store {store.url} is missing {len(missing)} record(s) "
                f"for this campaign (first: {missing[0][:16]}…"
                + (f"; {quarantined} quarantined" if quarantined else "")
                + "); pass partial=True to aggregate what exists"
            )
    return out


def aggregate_table1_store(
    tasks: "list[TaskSpec]",
    store: "StoreBackend | str",
    *,
    partial: bool = False,
) -> "list[Table1Row]":
    """Fold Table-1 rows straight out of a result store (streaming).

    With ``partial=True``, groups whose sweep is incomplete (any
    interval's record missing, or the model interval absent) are
    skipped instead of raising — aggregate what a half-finished
    campaign already proves, recompute the rest later.
    """
    records = records_for_tasks(tasks, store, partial=partial)
    if not partial:
        return aggregate_table1(tasks, records)
    complete: "dict[tuple, bool]" = {}
    for task, rec in zip(tasks, records):
        key = (task.uid, task.method, task.scheme)
        complete[key] = complete.get(key, True) and rec is not None
    fold = _Table1Fold()
    for task, rec in zip(tasks, records):
        if complete[(task.uid, task.method, task.scheme)]:
            fold.add(task, rec)
    return fold.rows()


def aggregate_figure1_store(
    tasks: "list[TaskSpec]",
    store: "StoreBackend | str",
    *,
    partial: bool = False,
) -> "list[Figure1Point]":
    """Fold Figure-1 points straight out of a result store (streaming).

    With ``partial=True``, tasks without a record are simply absent
    from the returned points (task order otherwise preserved).
    """
    records = records_for_tasks(tasks, store, partial=partial)
    if not partial:
        return aggregate_figure1(tasks, records)
    return [
        _figure1_point(task, rec)
        for task, rec in zip(tasks, records)
        if rec is not None
    ]
