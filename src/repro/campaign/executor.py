"""Process-pool campaign execution with ordered results.

The executor maps a list of :class:`~repro.campaign.spec.TaskSpec`
over worker processes and returns one result record per task, in task
order, regardless of completion order.  Correctness never depends on
scheduling: each task derives its RNG streams from its own identity
(see :mod:`repro.campaign.spec`), so ``jobs=N`` is bit-identical to
``jobs=1``.

Design notes
------------
- Workers receive only the tiny ``TaskSpec``; matrices are rebuilt
  inside the worker from ``(uid, scale)`` through the process-local
  :func:`~repro.sim.matrices.get_matrix` cache, so a worker that runs
  a whole sweep of intervals for one matrix builds it once.
- Scheduling is chunked (``~4`` chunks per worker) so pool IPC costs
  amortize over many short tasks while the tail stays balanced.
- Each chunk is its own future, persisted to the optional
  :class:`~repro.store.protocol.StoreBackend` *as it completes* — a
  slow chunk never holds finished results hostage in parent memory,
  so a crash loses at most the chunks still in flight.  The returned
  record list is reassembled in task order regardless.
- ``jobs=1`` (the library default) runs everything inline in the
  calling process — no pool, no pickling, same records.
"""

from __future__ import annotations

import math
import os
import uuid
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import TaskSpec
from repro.obs.metrics import METRICS, diff_snapshots, merge_snapshots

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos import ChaosPolicy, RetryPolicy
    from repro.store.protocol import StoreBackend

__all__ = [
    "default_jobs",
    "execute_task",
    "run_campaign",
    "TELEMETRY_SCHEMA",
    "PARTIAL_SCHEMA",
    "partial_hash",
    "make_partial_record",
    "load_partials",
]

#: Schema version stamped into ``telemetry`` store records.
TELEMETRY_SCHEMA: int = 1

#: Schema version stamped into ``partial`` (adaptive progress) records.
PARTIAL_SCHEMA: int = 1

#: Target chunks per worker: small enough to balance the tail, large
#: enough to amortize pickling/IPC over many sub-second tasks.
CHUNKS_PER_WORKER: int = 4

#: How many times a *hardened* campaign (retries / --task-timeout /
#: chaos enabled) rebuilds a broken process pool before degrading to
#: serial in-process execution.  Unhardened campaigns keep the legacy
#: behavior: a broken pool propagates.
MAX_POOL_RESTARTS: int = 3

#: Per-process solve workspace (see :mod:`repro.perf`): one per worker,
#: reused across every task the worker executes — repetitions restore
#: the live matrix by strike-undo instead of recopying, and buffers
#: survive task boundaries.  Created lazily so importing the executor
#: stays cheap.
_WORKER_WORKSPACE = None


def _worker_workspace():
    global _WORKER_WORKSPACE
    if _WORKER_WORKSPACE is None:
        from repro.perf import SolveWorkspace

        _WORKER_WORKSPACE = SolveWorkspace()
    return _WORKER_WORKSPACE


def release_worker_workspace() -> None:
    """Drop the worker workspace's held arrays (incl. its strong
    reference to the last task's matrix).  Part of the
    :func:`repro.perf.clear_caches` contract — without this, the
    workspace would pin the largest objects a memory-bounding clear is
    trying to free."""
    global _WORKER_WORKSPACE
    if _WORKER_WORKSPACE is not None:
        _WORKER_WORKSPACE.release()
    _WORKER_WORKSPACE = None


#: Per-process JSONL trace shards, keyed by trace directory.  Each
#: entry remembers the pid that opened it: a forked worker inherits the
#: parent's dict (and possibly an open file handle), and writing the
#: parent's shard from two processes would interleave corruptly — the
#: pid check makes every process open its own ``shard-<pid>.jsonl``.
_WORKER_TRACERS: "dict[str, tuple[int, object]]" = {}


def _worker_tracer(trace_dir):
    from repro.obs.tracer import JsonlTracer

    key = str(trace_dir)
    pid = os.getpid()
    entry = _WORKER_TRACERS.get(key)
    if entry is None or entry[0] != pid:
        tracer = JsonlTracer(Path(trace_dir) / f"shard-{pid}.jsonl")
        _WORKER_TRACERS[key] = (pid, tracer)
        return tracer
    return entry[1]


#: Per-process stores opened from a URL for partial-progress writes,
#: keyed by URL with the opening pid remembered (same fork-safety
#: rationale as ``_WORKER_TRACERS``: a forked worker must open its own
#: connection/handle, never reuse the parent's).
_WORKER_PARTIAL_STORES: "dict[str, tuple[int, object]]" = {}


def partial_hash(task_hash: str) -> str:
    """Store hash of a task's partial-progress record.

    Namespaced like telemetry records (``"partial:<task hash>"``), so
    it can never collide with a task content hash and resume-by-hash
    ignores it; unlike telemetry it is deterministic per task, so the
    store's last-wins fold keeps only the newest partial.
    """
    return f"partial:{task_hash}"


def make_partial_record(task_hash: str, per_rep: dict) -> dict:
    """Partial-progress record for an adaptive task (``kind="partial"``).

    Carries the per-repetition payload lists
    (:data:`repro.sim.engine.PER_REP_KEYS`) of every completed
    repetition; the values JSON round-trip exactly, so a resumed run
    continues bit-identically.  Superseded by the task's final record
    (``repro store compact`` drops a partial once the final exists).
    """
    return {
        "hash": partial_hash(task_hash),
        "kind": "partial",
        "schema": PARTIAL_SCHEMA,
        "task_hash": task_hash,
        "reps_done": len(per_rep["times"]),
        "per_rep": {k: list(v) for k, v in per_rep.items()},
    }


def load_partials(store, task_hashes: "set[str]") -> "dict[str, dict]":
    """Stream the store once and return per-rep payloads of the newest
    partial record for each wanted task hash (absent hashes are simply
    missing from the result)."""
    if not task_hashes:
        return {}
    wanted = {partial_hash(h): h for h in task_hashes}
    newest: "dict[str, dict]" = {}
    for rec in store.iter_records():
        h = wanted.get(rec.get("hash", ""))
        if h is not None and rec.get("kind") == "partial":
            newest[h] = rec  # iteration order == append order: last wins
    return {h: rec["per_rep"] for h, rec in newest.items()}


def _resolve_partial_store(partial_store):
    """Resolve the partial sink: a live backend passes through (serial
    path); a URL opens one per-process cached backend (pool workers)."""
    if not isinstance(partial_store, str):
        return partial_store
    pid = os.getpid()
    entry = _WORKER_PARTIAL_STORES.get(partial_store)
    if entry is None or entry[0] != pid:
        from repro.store import open_store

        entry = (pid, open_store(partial_store))
        _WORKER_PARTIAL_STORES[partial_store] = entry
    return entry[1]


def _telemetry_state() -> dict:
    """Cumulative observability counters for this process, with the
    workspace's hot-path attribute counters folded in (they are plain
    attributes, not METRICS entries — see ``SolveWorkspace.buffer``)."""
    snap = METRICS.snapshot()
    ws = _WORKER_WORKSPACE
    if ws is not None:
        c = snap["counters"]
        for key, value in (
            ("workspace.buffer_requests", ws.buffer_requests),
            ("workspace.buffer_allocs", ws.buffer_allocs),
        ):
            if value:
                c[key] = c.get(key, 0) + value
    return snap


def default_jobs() -> int:
    """Default worker count: every core this process may schedule on."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def execute_task(
    task: TaskSpec,
    *,
    reuse_workspace: bool = True,
    trace_dir=None,
    prior: "dict | None" = None,
    partial_store=None,
) -> dict:
    """Run one task to completion and return its JSON-ready record.

    This is the worker entry point — a module-level function so it
    pickles under every multiprocessing start method.  The record
    schema is::

        {"hash": <task content hash>,
         "task": <TaskSpec fields>,
         "n": <matrix dimension>, "density": <matrix density>,
         "matrix_source": "synthetic" | <resolved .mtx path>,
         "stats": <RunStatistics fields>}

    ``matrix_source`` is provenance, not identity: the task hash
    ignores the ``REPRO_MATRIX_DIR`` environment, so this field is how
    a store reader distinguishes synthetic-suite records from
    real-matrix ones (don't resume one as the other).

    ``reuse_workspace`` routes every repetition through the worker's
    process-local :class:`repro.perf.SolveWorkspace` — results are
    bit-identical either way (the task's content hash covers only the
    physics, so stores stay compatible across the switch).

    ``trace_dir`` appends every solve event of this task to the
    process's ``shard-<pid>.jsonl`` in that directory (crash-safe,
    one JSON object per line), with the task's content hash bound into
    each event as ``"task"`` — tracing is pure observation, so the
    record is byte-identical with or without it.

    For adaptive tasks (``task.sampling`` set) the repetitions go
    through :func:`repro.sim.engine.repeat_run_batched` instead:
    ``prior`` is a per-rep payload recovered from a ``kind="partial"``
    store record (completed repetitions are not re-executed), and
    ``partial_store`` — a live backend (serial path) or a store URL
    (pool workers open their own per-process handle) — receives a
    partial-progress record after every policy batch, so a crash mid-
    task loses at most one batch of repetitions.  Both are ignored for
    fixed-count tasks.
    """
    from dataclasses import asdict

    from repro.adaptive import SamplingPolicy
    from repro.core.methods import CostModel, Scheme, SchemeConfig
    from repro.sim.engine import make_rhs, repeat_run, repeat_run_batched
    from repro.sim.matrices import get_matrix, matrix_source

    task_hash = task.task_hash()
    tracer = None
    if trace_dir is not None:
        tracer = _worker_tracer(trace_dir)
        tracer.context["task"] = task_hash
    a = get_matrix(task.uid, task.scale)
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    cfg = SchemeConfig(
        Scheme.parse(task.scheme),
        checkpoint_interval=task.s,
        verification_interval=task.d,
        costs=costs,
    )
    common = dict(
        alpha=task.alpha,
        base_seed=task.base_seed,
        labels=task.labels,
        eps=task.eps,
        method=task.method,
        reuse_workspace=reuse_workspace,
        workspace=_worker_workspace() if reuse_workspace else None,
        backend=task.backend,
        tracer=tracer,
    )
    try:
        with METRICS.time_section("campaign.task_s"):
            if task.sampling:
                on_batch = None
                if partial_store is not None:
                    sink = _resolve_partial_store(partial_store)

                    def on_batch(per_rep, _sink=sink):
                        _sink.append(make_partial_record(task_hash, per_rep))

                stats = repeat_run_batched(
                    a,
                    b,
                    cfg,
                    policy=SamplingPolicy.parse(task.sampling),
                    prior=prior,
                    on_batch=on_batch,
                    **common,
                )
            else:
                stats = repeat_run(a, b, cfg, reps=task.reps, **common)
    finally:
        if tracer is not None:
            tracer.context.pop("task", None)
    METRICS.inc("campaign.tasks")
    return {
        "hash": task_hash,
        "task": task.to_json(),
        "n": a.nrows,
        "density": a.density,
        "matrix_source": matrix_source(task.uid, task.scale),
        "stats": asdict(stats),
    }


def run_campaign(
    tasks: "Iterable[TaskSpec]",
    *,
    jobs: "int | None" = None,
    store: "StoreBackend | str | os.PathLike[str] | None" = None,
    progress: "ProgressReporter | None" = None,
    chunksize: "int | None" = None,
    reuse_workspace: bool = True,
    trace_dir: "str | os.PathLike[str] | None" = None,
    task_timeout: "float | None" = None,
    retries: int = 0,
    retry_backoff: float = 0.05,
    chaos: "ChaosPolicy | str | None" = None,
) -> "list[dict]":
    """Execute every task, reusing stored results, and return records
    aligned with ``tasks``.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` → :func:`default_jobs`, ``1`` →
        serial in-process execution.
    store:
        Optional result store — a :class:`~repro.store.protocol
        .StoreBackend` instance or a URL-style selector resolved by
        :func:`repro.store.open_store` (bare path → single-file JSONL,
        ``sharded:dir`` → hash-partitioned shards, ``sqlite:file.db``
        → WAL-mode SQLite).  Tasks whose hash is already present are
        served from the store without recomputation; fresh results are
        appended as they complete.  Resume matching streams over the
        store, so pointing a small campaign at a multi-GB store does
        not materialize it.
    progress:
        Optional reporter; cache hits and fresh completions are both
        counted.
    chunksize:
        Tasks per pool chunk (``None`` → ``~4`` chunks per worker).
    reuse_workspace:
        Run repetitions through per-worker solve workspaces (the
        zero-copy hot path; bit-identical records).  ``False`` restores
        the historical fresh-allocation path.
    trace_dir:
        Optional directory receiving one crash-safe JSONL trace shard
        per worker process (``shard-<pid>.jsonl``; serial runs write
        one shard for the calling process).  Events carry the task
        hash, so ``repro trace summarize`` regroups shards per task
        regardless of scheduling.
    task_timeout, retries, retry_backoff:
        Self-healing knobs (``docs/DESIGN.md`` §10; all off by
        default, in which case execution takes the exact legacy code
        path).  ``task_timeout`` is a per-attempt wall-clock deadline
        in seconds; ``retries`` bounds re-attempts of a failing /
        timed-out task with exponential backoff starting at
        ``retry_backoff`` seconds.  A task that exhausts its attempts
        is *quarantined*: a structured ``kind="quarantine"`` record is
        stored under its hash, the campaign completes, and the
        ``campaign.quarantined`` metric counts it.
    chaos:
        Deterministic fault injection (:class:`repro.chaos
        .ChaosPolicy`, a spec string, or ``None`` → the
        ``REPRO_CHAOS`` environment gate).  Faults only fire in worker
        processes; a pool broken by injected (or real) crashes is
        rebuilt up to :data:`MAX_POOL_RESTARTS` times — with the
        chaos generation re-rolled so kill-fates converge — before the
        campaign degrades to serial in-process execution.

    Notes
    -----
    When a ``store`` is given and fresh tasks ran, one ``telemetry``
    record (``kind="telemetry"``, hash ``"telemetry:<uuid>"``) is
    appended after the task records: the merged per-worker metric
    deltas for this campaign (engine counters, cache hit/miss, phase
    time units, task timer).  The hash namespace cannot collide with
    task content hashes, so resume-by-hash is unaffected and readers
    that only look at task records skip it naturally.
    """
    from repro.chaos import resolve_chaos, resolve_retry

    tasks = list(tasks)
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    retry = resolve_retry(
        retries=retries, task_timeout=task_timeout, backoff=retry_backoff
    )
    chaos = resolve_chaos(chaos)
    own_store = False
    if store is not None and isinstance(store, (str, os.PathLike)):
        from repro.store import open_store

        store = open_store(store)
        own_store = True

    try:
        done = store.resume(tasks)[0] if store is not None else {}
        results: "list[dict | None]" = [None] * len(tasks)
        pending: "list[tuple[int, TaskSpec]]" = []
        for i, task in enumerate(tasks):
            rec = done.get(task.task_hash())
            if rec is not None:
                results[i] = rec
                if progress is not None:
                    progress.update(cached=True)
            else:
                pending.append((i, task))

        # Adaptive tasks: recover partial progress (completed reps of
        # tasks whose final record never landed) in one store pass, and
        # pick the partial-record sink.  The serial path appends through
        # the already-open store; pool workers get the store URL and
        # open their own handle — only on multi-writer-safe backends
        # (supports_leases), so a single-file JSONL store is never
        # written by two processes at once (its pool runs simply flush
        # no mid-task partials).
        priors: "dict[str, dict]" = {}
        pool_partial_url = None
        if store is not None:
            adaptive = {t.task_hash() for _, t in pending if t.sampling}
            priors = load_partials(store, adaptive)
            if adaptive and store.supports_leases:
                pool_partial_url = store.url

        telemetry_parts: "list[dict]" = []
        try:
            if pending:
                if jobs == 1 or len(pending) == 1:
                    base = _telemetry_state()
                    _run_serial(
                        pending,
                        results,
                        store,
                        progress,
                        reuse_workspace,
                        trace_dir,
                        retry,
                        chaos,
                        priors,
                        store,
                    )
                    delta = diff_snapshots(_telemetry_state(), base)
                    delta["pid"] = os.getpid()
                    telemetry_parts.append(delta)
                    if trace_dir is not None:
                        # Release the shard's fd; the cached tracer
                        # lazily reopens (append) if this process runs
                        # another traced campaign over the same dir.
                        _worker_tracer(trace_dir).close()
                else:
                    telemetry_parts = _run_pool_supervised(
                        jobs,
                        pending,
                        chunksize,
                        results,
                        store,
                        progress,
                        reuse_workspace,
                        trace_dir,
                        retry,
                        chaos,
                        priors,
                        pool_partial_url,
                    )
        finally:
            # Terminate the \r status line even when a task raised, so
            # the traceback doesn't print on top of it.
            if progress is not None:
                progress.finish()
        if store is not None and telemetry_parts:
            merged = merge_snapshots(telemetry_parts)
            store.append(
                {
                    "hash": f"telemetry:{uuid.uuid4().hex}",
                    "kind": "telemetry",
                    "schema": TELEMETRY_SCHEMA,
                    "jobs": jobs,
                    "workers": len({p.get("pid") for p in telemetry_parts}),
                    "fresh": len(pending),
                    "cached": len(tasks) - len(pending),
                    "counters": merged["counters"],
                    "timers": merged["timers"],
                }
            )
        quarantined = sum(
            1
            for rec in results
            if rec is not None and rec.get("kind") == "quarantine"
        )
        if quarantined:
            METRICS.inc("campaign.quarantined", quarantined)
        return results  # type: ignore[return-value]
    finally:
        if own_store and store is not None:
            store.close()


def _run_serial(
    pending: "list[tuple[int, TaskSpec]]",
    results: "list[dict | None]",
    store: "StoreBackend | None",
    progress: "ProgressReporter | None",
    reuse_workspace: bool,
    trace_dir,
    retry: "RetryPolicy | None" = None,
    chaos: "ChaosPolicy | None" = None,
    priors: "dict[str, dict] | None" = None,
    partial_store=None,
) -> None:
    """Run pending tasks inline in this process, skipping any already
    delivered (pool-degradation re-runs pass a partially filled
    ``results``).  With no hardening knob set this is exactly the
    legacy serial loop."""
    priors = priors or {}

    def adaptive_kwargs(task: TaskSpec) -> dict:
        if not task.sampling:
            return {}
        return {
            "prior": priors.get(task.task_hash()),
            "partial_store": partial_store,
        }

    if retry is None and chaos is None:
        for i, task in pending:
            if results[i] is not None:
                continue
            _deliver(
                i,
                execute_task(
                    task,
                    reuse_workspace=reuse_workspace,
                    trace_dir=trace_dir,
                    **adaptive_kwargs(task),
                ),
                results,
                store,
                progress,
            )
        return
    from repro.chaos import run_guarded

    tracer = None if trace_dir is None else _worker_tracer(trace_dir)
    for i, task in pending:
        if results[i] is not None:
            continue
        record = run_guarded(
            task,
            retry=retry,
            chaos=chaos,
            tracer=tracer,
            reuse_workspace=reuse_workspace,
            trace_dir=trace_dir,
            **adaptive_kwargs(task),
        )
        _deliver(i, record, results, store, progress)


def _run_pool_supervised(
    jobs: int,
    pending: "list[tuple[int, TaskSpec]]",
    chunksize: "int | None",
    results: "list[dict | None]",
    store: "StoreBackend | None",
    progress: "ProgressReporter | None",
    reuse_workspace: bool,
    trace_dir,
    retry: "RetryPolicy | None",
    chaos: "ChaosPolicy | None",
    priors: "dict[str, dict] | None" = None,
    partial_url: "str | None" = None,
) -> "list[dict]":
    """:func:`_run_pool` under supervision: a hardened campaign
    (retry / timeout / chaos armed) that loses its pool to worker
    crashes rebuilds it — re-running only the undelivered tasks — up
    to :data:`MAX_POOL_RESTARTS` times, then degrades to serial
    in-process execution.  Unhardened campaigns keep the legacy
    contract: a broken pool propagates."""
    hardened = retry is not None or chaos is not None
    telemetry_parts: "list[dict]" = []
    todo = pending
    restarts = 0
    while True:
        try:
            telemetry_parts.extend(
                _run_pool(
                    jobs,
                    todo,
                    chunksize,
                    results,
                    store,
                    progress,
                    reuse_workspace,
                    trace_dir,
                    retry,
                    chaos,
                    priors,
                    partial_url,
                )
            )
            return telemetry_parts
        except BrokenProcessPool:
            if not hardened:
                raise
            todo = [(i, t) for i, t in pending if results[i] is None]
            if not todo:
                return telemetry_parts
            if store is not None and partial_url is not None:
                # Workers of the broken pool may have flushed newer
                # partials than the campaign-start scan saw; pick them
                # up so the rebuilt pool re-executes as little as
                # possible.
                adaptive = {t.task_hash() for _, t in todo if t.sampling}
                priors = load_partials(store, adaptive)
            restarts += 1
            METRICS.inc("campaign.pool_restarts")
            if restarts > MAX_POOL_RESTARTS:
                warnings.warn(
                    f"process pool broke {restarts} times; degrading to "
                    f"serial execution for the remaining {len(todo)} task(s)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                base = _telemetry_state()
                _run_serial(
                    todo,
                    results,
                    store,
                    progress,
                    reuse_workspace,
                    trace_dir,
                    retry,
                    chaos,
                    priors,
                    store,
                )
                delta = diff_snapshots(_telemetry_state(), base)
                delta["pid"] = os.getpid()
                telemetry_parts.append(delta)
                return telemetry_parts
            if chaos is not None:
                # Re-roll the injection draws for the rebuilt pool so a
                # kill-fated task cannot crash every successor pool too.
                chaos = chaos.with_generation(chaos.generation + 1)


def _run_pool(
    jobs: int,
    pending: "list[tuple[int, TaskSpec]]",
    chunksize: "int | None",
    results: "list[dict | None]",
    store: "StoreBackend | None",
    progress: "ProgressReporter | None",
    reuse_workspace: bool = True,
    trace_dir=None,
    retry: "RetryPolicy | None" = None,
    chaos: "ChaosPolicy | None" = None,
    priors: "dict[str, dict] | None" = None,
    partial_url: "str | None" = None,
) -> "list[dict]":
    """Fan pending tasks over a process pool, one future per chunk.

    Returns the per-chunk telemetry deltas of every chunk that
    completed (in completion order) for the caller to merge.
    """
    workers = min(jobs, len(pending))
    chunk = chunksize or max(1, math.ceil(len(pending) / (workers * CHUNKS_PER_WORKER)))
    groups = [pending[lo : lo + chunk] for lo in range(0, len(pending), chunk)]
    telemetry_parts: "list[dict]" = []
    trace_arg = None if trace_dir is None else os.fspath(trace_dir)
    priors = priors or {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                execute_chunk,
                [t for _, t in group],
                reuse_workspace,
                trace_arg,
                retry,
                chaos,
                # Ship only this chunk's priors across the pickle
                # boundary, and only when something adaptive is afoot.
                (
                    priors
                    and {
                        h: priors[h]
                        for _, t in group
                        if (h := t.task_hash()) in priors
                    }
                )
                or None,
                partial_url,
            ): group
            for group in groups
        }
        try:
            for fut in as_completed(futures):
                payload = fut.result()
                telemetry_parts.append(payload["telemetry"])
                for (i, _), rec in zip(futures[fut], payload["records"]):
                    _deliver(i, rec, results, store, progress)
        except BaseException:
            # Don't let the pool's __exit__ burn through every queued
            # chunk only to discard the results: cancel what hasn't
            # started, wait out what has, and persist any record that
            # finished cleanly before propagating the failure — those
            # survive for --resume.  The salvage itself is best-effort:
            # if persistence is what broke (disk full), the original
            # error must still be the one that propagates.
            pool.shutdown(wait=True, cancel_futures=True)
            try:
                for fut, group in futures.items():
                    if fut.done() and not fut.cancelled() and fut.exception() is None:
                        for (i, _), rec in zip(group, fut.result()["records"]):
                            if results[i] is None:  # not yet delivered
                                _deliver(i, rec, results, store, progress)
            except Exception:
                pass
            raise
    return telemetry_parts


def execute_chunk(
    tasks: "list[TaskSpec]",
    reuse_workspace: bool = True,
    trace_dir=None,
    retry: "RetryPolicy | None" = None,
    chaos: "ChaosPolicy | None" = None,
    priors: "dict[str, dict] | None" = None,
    partial_url: "str | None" = None,
) -> dict:
    """Worker entry point for one scheduling chunk (module-level so it
    pickles under every multiprocessing start method).

    Returns ``{"records": [...], "telemetry": {...}}`` — the task
    records in task order plus this chunk's metric delta.  Snapshots
    are diffed per chunk, so values a forked worker inherited from the
    parent process never leak into campaign telemetry.

    With a retry or chaos policy armed the chunk routes through
    :func:`repro.chaos.run_guarded` (deadline / retry / quarantine /
    injection); otherwise it is the plain legacy loop.  ``priors`` and
    ``partial_url`` carry adaptive-sampling resume payloads and the
    partial-record sink URL (see :func:`execute_task`).
    """
    base = _telemetry_state()
    priors = priors or {}

    def adaptive_kwargs(task: TaskSpec) -> dict:
        if not task.sampling:
            return {}
        return {
            "prior": priors.get(task.task_hash()),
            "partial_store": partial_url,
        }

    if retry is None and chaos is None:
        records = [
            execute_task(
                t,
                reuse_workspace=reuse_workspace,
                trace_dir=trace_dir,
                **adaptive_kwargs(t),
            )
            for t in tasks
        ]
    else:
        from repro.chaos import run_guarded

        tracer = None if trace_dir is None else _worker_tracer(trace_dir)
        records = [
            run_guarded(
                t,
                retry=retry,
                chaos=chaos,
                tracer=tracer,
                reuse_workspace=reuse_workspace,
                trace_dir=trace_dir,
                **adaptive_kwargs(t),
            )
            for t in tasks
        ]
    telemetry = diff_snapshots(_telemetry_state(), base)
    telemetry["pid"] = os.getpid()
    return {"records": records, "telemetry": telemetry}


def _deliver(
    index: int,
    record: dict,
    results: "list[dict | None]",
    store: "StoreBackend | None",
    progress: "ProgressReporter | None",
) -> None:
    """Persist one finished record, then slot it into place and count it.

    The store append comes first so ``results[index] is None`` remains
    a reliable "not yet durably delivered" test for crash salvage.
    """
    if store is not None:
        store.append(record)
    results[index] = record
    if progress is not None:
        progress.update()
