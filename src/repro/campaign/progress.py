"""Throughput and ETA reporting for long campaigns.

A campaign at paper scale runs thousands of tasks over hours; the
reporter keeps a single carriage-return-updated status line on a
stream (normally stderr, so piped stdout output stays clean):

    table1: 135/324 tasks (41.7%) | 12 cached | 3.42 task/s | ETA 0:55

The rate and ETA are computed over *freshly executed* tasks only —
cache hits served from a result store complete in microseconds and
would otherwise make the ETA uselessly optimistic right after a
resume.  The throughput is a sliding-window estimate (the most recent
completions), so long campaigns whose early tasks were atypically slow
or fast converge to the current speed instead of the lifetime mean.

``mode="json"`` replaces the human status line with one machine-
readable JSON object per refresh (newline-delimited, no carriage
returns), so external schedulers can scrape campaign throughput from
stderr without parsing a TTY animation.

With ``stream=None`` the reporter is a no-op, which is the library
default: only the CLI turns it on.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import IO

__all__ = ["ProgressReporter", "format_duration"]

#: Fresh-completion samples kept for the sliding-window rate.
_RATE_WINDOW = 64


def format_duration(seconds: float) -> str:
    """Render a duration as ``m:ss`` (or ``h:mm:ss`` past an hour)."""
    total = max(0, int(seconds + 0.5))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m}:{s:02d}"


class ProgressReporter:
    """Counts task completions and renders a throughput/ETA line.

    Parameters
    ----------
    total:
        Number of tasks in the campaign (cached + pending).  ``0`` is
        legal (an empty or fully-filtered campaign): every division in
        the reporter is guarded, so rendering cannot raise.
    stream:
        Where to write; ``None`` disables all output.
    label:
        Prefix naming the campaign.
    min_interval:
        Minimum seconds between redraws (the final line always
        renders).
    mode:
        ``"bar"`` (default) renders the carriage-return status line;
        ``"json"`` emits one newline-terminated JSON object per
        refresh with keys ``label, done, total, cached, fresh, pct,
        rate_per_s, eta_s, elapsed_s``.
    """

    def __init__(
        self,
        total: int,
        *,
        stream: "IO[str] | None" = None,
        label: str = "campaign",
        min_interval: float = 0.25,
        mode: str = "bar",
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if mode not in ("bar", "json"):
            raise ValueError(f"mode must be 'bar' or 'json', got {mode!r}")
        self.total = total
        self.done = 0
        self.cached = 0
        self.mode = mode
        self._stream = stream
        self._label = label
        self._min_interval = min_interval
        self._t0 = time.monotonic()
        self._last_emit = 0.0
        self._last_len = 0
        #: (monotonic time, fresh count) samples for the window rate.
        self._window: "deque[tuple[float, int]]" = deque(maxlen=_RATE_WINDOW)

    @property
    def fresh(self) -> int:
        """Tasks actually executed (completions minus cache hits)."""
        return self.done - self.cached

    def rate(self) -> float:
        """Fresh-task throughput in tasks/second.

        Sliding-window estimate over the most recent fresh completions
        when at least two samples span measurable time; otherwise the
        lifetime mean.  Every division is guarded — zero-total stores,
        zero elapsed time and cache-only campaigns all render as 0.
        """
        if len(self._window) >= 2:
            t_old, fresh_old = self._window[0]
            t_new, fresh_new = self._window[-1]
            span = t_new - t_old
            gained = fresh_new - fresh_old
            if span > 0 and gained > 0:
                return gained / span
        elapsed = time.monotonic() - self._t0
        return self.fresh / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> "float | None":
        """Projected seconds to finish, or ``None`` before any sample."""
        r = self.rate()
        if r <= 0:
            return None
        return max(0, self.total - self.done) / r

    def update(self, n: int = 1, *, cached: bool = False) -> None:
        """Record ``n`` completed tasks (``cached`` = served from store)."""
        self.done += n
        if cached:
            self.cached += n
        else:
            self._window.append((time.monotonic(), self.fresh))
        self._emit()

    def finish(self) -> None:
        """Render the final line and terminate it with a newline."""
        self._emit(force=True)
        if self._stream is not None and self.mode == "bar":
            self._stream.write("\n")
            self._stream.flush()

    def render(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        parts = [f"{self._label}: {self.done}/{self.total} tasks ({pct:.1f}%)"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        parts.append(f"{self.rate():.2f} task/s")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"ETA {format_duration(eta)}")
        return " | ".join(parts)

    def render_json(self) -> str:
        """One machine-readable status object (the ``json`` mode line)."""
        eta = self.eta_seconds()
        return json.dumps(
            {
                "label": self._label,
                "done": self.done,
                "total": self.total,
                "cached": self.cached,
                "fresh": self.fresh,
                "pct": round(100.0 * self.done / self.total if self.total else 100.0, 2),
                "rate_per_s": round(self.rate(), 4),
                "eta_s": round(eta, 1) if eta is not None else None,
                "elapsed_s": round(time.monotonic() - self._t0, 3),
            },
            sort_keys=True,
        )

    def _emit(self, force: bool = False) -> None:
        if self._stream is None:
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self._min_interval:
            return
        self._last_emit = now
        if self.mode == "json":
            self._stream.write(self.render_json() + "\n")
            self._stream.flush()
            return
        line = self.render()
        # Pad over any residue of a longer previous render ("ETA 1:00:02"
        # shrinking to "ETA 59:57" would otherwise leave stray digits).
        pad = " " * max(0, self._last_len - len(line))
        self._last_len = len(line)
        self._stream.write("\r" + line + pad)
        self._stream.flush()
