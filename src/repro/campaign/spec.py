"""Declarative campaign specifications.

A campaign is a flat list of independent *tasks*, each one the smallest
schedulable unit of the paper's evaluation: run ``reps`` fault-injected
solves of one (method, matrix, scheme, α, s, d) point and aggregate
them.  A
:class:`TaskSpec` carries everything a worker process needs to execute
the point from scratch — matrices are referenced by ``(uid, scale)``
and rebuilt (deterministically, from cache) inside the worker rather
than pickled across the process boundary.

Seeding is the load-bearing invariant: a task's repetitions draw their
RNG from ``spawn_named(base_seed, scheme, alpha, *labels, rep)``,
exactly the tuple the serial drivers in :mod:`repro.sim` have always
used.  Because the seed depends only on the task's *identity* and never
on execution order, a campaign sliced across N worker processes is
bit-identical to the same campaign run serially.

Tasks are content-hashable (:meth:`TaskSpec.task_hash`) so a result
store can recognize completed work across process restarts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

__all__ = ["TaskSpec", "CampaignSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: ``reps`` runs of a single parameter point.

    Attributes
    ----------
    experiment:
        Campaign family the task belongs to (``"table1"`` /
        ``"figure1"`` / free-form for custom campaigns).
    uid, scale:
        Suite-matrix id and size divisor; the worker rebuilds the
        matrix via :func:`repro.sim.matrices.get_matrix`.
    scheme:
        :class:`repro.core.methods.Scheme` value string.
    alpha:
        Fault-rate constant (strikes per iteration).
    s, d:
        Checkpoint and verification intervals under test.
    reps, base_seed, eps:
        Forwarded to :func:`repro.sim.engine.repeat_run`.
    labels:
        Seed-derivation labels, verbatim the tuple the serial drivers
        pass to ``repeat_run`` — part of the task's identity.
    s_model:
        Model-predicted interval for this task's (matrix, scheme)
        group; carried so aggregation can report ``s̃`` without
        re-deriving the model (0 when not applicable).
    method:
        :class:`repro.core.methods.Method` value string — the solver
        axis of the grid.  Adding this field changed the task-hash
        schema (stores written before the solver axis existed are not
        recognized and their tasks recompute).
    backend:
        Kernel-backend name (:mod:`repro.backends`) — the kernel axis
        of the grid.  Adding this field bumped the task-hash schema
        again (pre-backend stores recompute); the backend is part of
        the task's *identity* but deliberately not of its seed
        derivation, so the same point on two backends faces the same
        fault stream.
    sampling:
        Canonical :class:`repro.adaptive.SamplingPolicy` spec string,
        or ``""`` for fixed-count sampling (the default).  When set,
        the task runs adaptively — repetitions stop once the CI
        half-width is below target — and ``reps`` must equal the
        policy's ``max_reps`` (the rep cap, so ``reps - stats.reps`` is
        the savings).  Adding this field bumped the task-hash schema a
        third time (pre-adaptive stores recompute).  Like ``backend``,
        the policy is part of the task's *identity* but deliberately
        not of its seed derivation: adaptive and fixed-count runs share
        fault streams prefix-wise (docs/DESIGN.md §11).
    """

    experiment: str
    uid: int
    scale: int
    scheme: str
    alpha: float
    s: int
    d: int = 1
    reps: int = 10
    base_seed: int = 2015
    eps: float = 1e-6
    labels: tuple = ()
    s_model: int = 0
    method: str = "cg"
    backend: str = "reference"
    sampling: str = ""

    def __post_init__(self) -> None:
        if self.s < 1:
            raise ValueError(f"s must be >= 1, got {self.s}")
        if self.d < 1:
            raise ValueError(f"d must be >= 1, got {self.d}")
        if self.reps < 1:
            raise ValueError(f"reps must be >= 1, got {self.reps}")
        from repro.backends import get_backend
        from repro.core.methods import Method, Scheme

        Method.parse(self.method)  # raises on an unknown solver
        Scheme.parse(self.scheme)  # raises on an unknown scheme
        get_backend(self.backend)  # raises on an unknown backend
        if self.sampling:
            from repro.adaptive import SamplingPolicy

            policy = SamplingPolicy.parse(self.sampling)
            if policy.spec() != self.sampling:
                # Two spellings of one policy must never hash apart.
                raise ValueError(
                    f"sampling spec {self.sampling!r} is not canonical; "
                    f"use {policy.spec()!r}"
                )
            if self.reps != policy.max_reps:
                raise ValueError(
                    f"adaptive task reps ({self.reps}) must equal the "
                    f"policy rep cap max={policy.max_reps}"
                )

    def task_hash(self) -> str:
        """Content hash identifying this task across processes and runs.

        Built from the ``repr`` of the full field tuple — ints, strings
        and floats all round-trip exactly through ``repr``, so the hash
        is stable across interpreter sessions (no reliance on Python's
        randomized ``hash()``).
        """
        payload = repr(tuple(getattr(self, f.name) for f in fields(self)))
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_json(self) -> dict:
        """JSON-serializable view (tuples become lists)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["labels"] = list(self.labels)
        return out

    @classmethod
    def from_json(cls, data: dict) -> "TaskSpec":
        """Invert :meth:`to_json`; the round trip preserves the task hash
        (labels come back as the original tuple, floats exactly)."""
        kwargs = dict(data)
        kwargs["labels"] = tuple(kwargs.get("labels", ()))
        known = {f.name for f in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValueError(f"unknown TaskSpec fields: {sorted(unknown)}")
        return cls(**kwargs)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative parameter grid for one of the paper's experiments.

    ``expand()`` flattens the grid into the same (matrix, scheme, α,
    interval) points, in the same order, that the serial drivers
    iterate, so aggregation reproduces their output exactly.

    Attributes
    ----------
    kind:
        ``"table1"`` (interval sweep at the paper's fault constant) or
        ``"figure1"`` (scheme comparison across MTBF values).
    scale, reps, uids, eps, base_seed:
        As in :func:`repro.sim.experiments.run_table1` /
        :func:`~repro.sim.experiments.run_figure1`.
    alpha:
        Fault constant for Table-1 campaigns.
    mtbf_values:
        X-axis points ``1/α`` for Figure-1 campaigns (``None`` → the
        driver's default span).
    s_span:
        Table-1 sweep half-width around the model prediction.
    model_s_max:
        Search ceiling for the Eq.-6 integer optimum (``None`` → the
        driver default, :data:`repro.sim.experiments.MODEL_S_MAX`);
        widen for large-λ campaigns whose optimum lies beyond it.
    methods:
        Solver axis of the grid (:class:`repro.core.methods.Method`
        value strings).  Combinations a solver does not support —
        ONLINE-DETECTION under anything but CG — are silently skipped
        during expansion, so ``methods=("cg", "bicgstab", "pcg")`` on a
        figure-1 campaign yields 3+2+2 scheme series per matrix.
    backend:
        Kernel backend every task of the campaign runs on
        (:mod:`repro.backends`; default ``"reference"``, the
        bit-identity oracle the golden fixtures were recorded on).  A
        single value, not an axis: the presets reproduce the paper's
        artifacts on one kernel — sweep backends against each other
        with ``Study().axis("backend", ...)``.
    sampling:
        Adaptive sampling policy spec (``repro.adaptive``) applied to
        every task of the campaign; ``""`` (default) keeps fixed-count
        sampling.  Under adaptive sampling ``reps`` is ignored — the
        policy's ``max`` is the per-task rep cap.
    """

    kind: str
    scale: int = 16
    reps: int = 10
    uids: "tuple[int, ...] | None" = None
    alpha: float = 1.0 / 16.0
    mtbf_values: "tuple[float, ...] | None" = None
    eps: float = 1e-6
    base_seed: int = 2015
    s_span: int = 6
    model_s_max: "int | None" = None
    methods: "tuple[str, ...]" = ("cg",)
    backend: str = "reference"
    sampling: str = ""

    def __post_init__(self) -> None:
        from repro.backends import get_backend
        from repro.core.methods import Method

        if self.kind not in ("table1", "figure1"):
            raise ValueError(f"unknown campaign kind: {self.kind!r}")
        if self.reps < 1:
            raise ValueError(f"reps must be >= 1, got {self.reps}")
        if self.s_span < 0:
            raise ValueError(f"s_span must be >= 0, got {self.s_span}")
        if not self.methods:
            raise ValueError("methods must name at least one solver")
        for m in self.methods:
            Method.parse(m)  # raises on an unknown solver
        get_backend(self.backend)  # raises on an unknown backend
        if self.sampling:
            from repro.adaptive import SamplingPolicy

            # Canonicalize so every spelling of one policy expands to
            # identically-hashed tasks (raises on a bad spec).
            canonical = SamplingPolicy.parse(self.sampling).spec()
            object.__setattr__(self, "sampling", canonical)

    def _task_reps(self) -> int:
        """Per-task rep count: the policy cap under adaptive sampling."""
        if self.sampling:
            from repro.adaptive import SamplingPolicy

            return SamplingPolicy.parse(self.sampling).max_reps
        return self.reps

    def expand(self) -> "list[TaskSpec]":
        """Flatten the grid into an ordered list of tasks."""
        if self.kind == "table1":
            return self._expand_table1()
        return self._expand_figure1()

    # The imports below are deliberately local: repro.sim.experiments
    # builds its drivers on top of this package, so the dependency from
    # spec expansion back to the model helpers must stay lazy.

    def _expand_table1(self) -> "list[TaskSpec]":
        from repro.core.methods import CostModel, Method, Scheme
        from repro.sim.experiments import MODEL_S_MAX, default_s_grid, model_interval_for
        from repro.sim.matrices import get_matrix, suite_specs

        s_max = MODEL_S_MAX if self.model_s_max is None else self.model_s_max
        reps = self._task_reps()
        tasks: list[TaskSpec] = []
        for spec in suite_specs(list(self.uids) if self.uids is not None else None):
            costs = CostModel.from_matrix(get_matrix(spec.uid, self.scale))
            # The Eq.-6 optimization depends only on (matrix, scheme),
            # so hoist it out of the method loop.
            sweeps: "dict[Scheme, tuple[int, list[int]]]" = {}
            for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
                s_model, _ = model_interval_for(scheme, self.alpha, costs, s_max=s_max)
                grid = default_s_grid(s_model, span=self.s_span)
                if s_model not in grid:
                    # Fail before any compute is spent: aggregation needs
                    # Et(s̃), so a sweep that clips the model interval out
                    # (its ceiling is default_s_grid's s_max) could only
                    # error after the whole campaign had run.
                    raise ValueError(
                        f"matrix {spec.uid} / {scheme.value}: model interval "
                        f"s~={s_model} falls outside the sweep grid "
                        f"{grid}; lower alpha's MTBF or widen default_s_grid"
                    )
                sweeps[scheme] = (s_model, grid)
            for method in (Method.parse(m) for m in self.methods):
                for scheme, (s_model, grid) in sweeps.items():
                    for s in grid:
                        tasks.append(
                            TaskSpec(
                                experiment="table1",
                                uid=spec.uid,
                                scale=self.scale,
                                scheme=scheme.value,
                                alpha=self.alpha,
                                s=s,
                                d=1,
                                reps=reps,
                                base_seed=self.base_seed,
                                eps=self.eps,
                                labels=("table1", spec.uid, "s", s),
                                s_model=s_model,
                                method=method.value,
                                backend=self.backend,
                                sampling=self.sampling,
                            )
                        )
        return tasks

    def _expand_figure1(self) -> "list[TaskSpec]":
        from repro.core.methods import CostModel, Method
        from repro.sim.experiments import (
            DEFAULT_MTBF_VALUES,
            MODEL_S_MAX,
            model_interval_for,
        )
        from repro.sim.matrices import get_matrix, suite_specs

        s_max = MODEL_S_MAX if self.model_s_max is None else self.model_s_max
        mtbfs = DEFAULT_MTBF_VALUES if self.mtbf_values is None else self.mtbf_values
        reps = self._task_reps()
        tasks: list[TaskSpec] = []
        for spec in suite_specs(list(self.uids) if self.uids is not None else None):
            costs = CostModel.from_matrix(get_matrix(spec.uid, self.scale))
            # The interval optimization depends only on (matrix, mtbf,
            # scheme); cache it so extra methods don't re-run it.
            intervals: "dict[tuple[float, object], tuple[int, int]]" = {}
            for method in (Method.parse(m) for m in self.methods):
                for mtbf in mtbfs:
                    alpha = 1.0 / mtbf
                    # supported_schemes keeps the paper's series order
                    # (online, abft-detection, abft-correction) and drops
                    # ONLINE-DETECTION for the non-CG solvers.
                    for scheme in method.supported_schemes:
                        if (mtbf, scheme) not in intervals:
                            intervals[mtbf, scheme] = model_interval_for(
                                scheme, alpha, costs, s_max=s_max
                            )
                        s, d = intervals[mtbf, scheme]
                        tasks.append(
                            TaskSpec(
                                experiment="figure1",
                                uid=spec.uid,
                                scale=self.scale,
                                scheme=scheme.value,
                                alpha=alpha,
                                s=s,
                                d=d,
                                reps=reps,
                                base_seed=self.base_seed,
                                eps=self.eps,
                                labels=("figure1", spec.uid, mtbf),
                                s_model=s,
                                method=method.value,
                                backend=self.backend,
                                sampling=self.sampling,
                            )
                        )
        return tasks
