"""JSONL result store: crash-safe persistence and resume.

One campaign store is one append-only file of JSON records, one per
line, each carrying the task's content hash, its full parameters and
its aggregated statistics.  Append-only JSONL gives exactly the
durability model a long campaign needs:

- every completed task is flushed to disk as soon as its result
  arrives, so killing the process loses at most the tasks in flight;
- a crash mid-write leaves at most one truncated *trailing* line,
  which the readers silently drop (the task simply reruns on resume)
  — corruption anywhere *else* is a real integrity problem and raises
  :class:`StoreError`;
- resuming is a pure set difference: tasks whose hash already appears
  in the store are served from it, everything else runs.

Floats survive the JSON round-trip exactly (``json`` serializes via
``repr``), so aggregates computed from resumed records are
bit-identical to a single uninterrupted run.

Reading is *streaming*: :meth:`ResultStore.iter_records` yields one
record at a time in file order without ever holding the file body in
memory, so a multi-GB store can be folded incrementally
(``repro report``, resume matching).  :meth:`ResultStore.load` remains
the materialize-everything convenience built on top of it.

This class is also the ``jsonl`` backend of the pluggable storage
layer (:mod:`repro.store`, ``docs/DESIGN.md`` §9) — the default one,
and the durability model the other backends must match.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterator

from repro.campaign.spec import TaskSpec

__all__ = ["ResultStore", "StoreError"]


class StoreError(RuntimeError):
    """A result store violates its integrity contract."""


#: Fast-path prefix for extracting a record's hash without parsing the
#: whole payload: every record the library writes starts exactly like
#: this (``json.dumps`` of a dict whose first key is ``"hash"``).
_HASH_PREFIX = '{"hash": "'


class ResultStore:
    """Append-only JSONL store of per-task result records.

    Parameters
    ----------
    path:
        File to append to; created (with parents) on first write.

    The store is usable as a context manager; :meth:`close` is also
    safe to call repeatedly.  Records are plain dicts with at least a
    ``"hash"`` key (see :func:`repro.campaign.executor.execute_task`
    for the full schema).
    """

    #: Leases (:mod:`repro.store.protocol`) need multi-writer claim
    #: atomicity a single append-only file cannot provide.
    supports_leases: bool = False

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = pathlib.Path(path)
        self._fh = None

    @property
    def url(self) -> str:
        """Canonical store URL (:func:`repro.store.open_store` form)."""
        return str(self.path)

    def _complete_lines(self) -> "Iterator[tuple[int, str]]":
        """Stream ``(lineno, text)`` for every *complete* line.

        A torn trailing write — the crash footprint, and nothing else:
        records are written as one ``line + "\\n"`` chunk, so an
        interrupted append leaves a tail with *no* final newline — is
        dropped silently.  The file is read incrementally; memory use
        is one line, never the file.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            prev: "bytes | None" = None
            lineno = 0
            for raw in fh:
                if prev is not None:
                    lineno += 1
                    yield lineno, prev.decode()
                prev = raw
            if prev is not None and prev.endswith(b"\n"):
                yield lineno + 1, prev.decode()
            # else: torn trailing write — drop it unconditionally; even
            # if the fragment happens to parse (flush cut exactly at
            # the closing brace), the next append() truncates it from
            # disk, so serving it as a cached record here would lose it
            # silently.

    def _parse(self, lineno: int, line: str) -> dict:
        """Decode one line into a record or raise :class:`StoreError`.

        A malformed line anywhere but the torn tail — including a
        corrupt but newline-terminated final record — means the file
        was hand-edited or damaged, and raises rather than silently
        recomputing (or worse, trusting) half a campaign.
        """
        try:
            rec = json.loads(line)
            if not isinstance(rec, dict) or "hash" not in rec:
                raise ValueError("record is not a dict with a 'hash' key")
        except ValueError as exc:
            raise StoreError(
                f"{self.path}:{lineno}: corrupt record ({exc})"
            ) from exc
        return rec

    def iter_records(self) -> "Iterator[dict]":
        """Stream every record in file order (duplicates included).

        This is the storage-layer primitive aggregation folds over:
        constant memory regardless of store size.  Duplicate hashes are
        *not* collapsed here — a fold that needs last-wins semantics
        (like :meth:`load`) applies them itself, which a plain dict
        update does for free.
        """
        for lineno, line in self._complete_lines():
            if not line.strip():
                continue  # blank lines carry no record
            yield self._parse(lineno, line)

    def load(self) -> "dict[str, dict]":
        """Read all records, keyed by task hash (duplicates: last wins).

        A torn *final* line is dropped silently; a malformed line
        anywhere else raises :class:`StoreError` — see
        :meth:`iter_records`, which this materializes.
        """
        records: dict[str, dict] = {}
        for rec in self.iter_records():
            records[rec["hash"]] = rec
        return records

    def append(self, record: dict) -> None:
        """Append one record and flush it to the OS immediately."""
        if "hash" not in record:
            raise ValueError("record must carry a 'hash' key")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def _repair_torn_tail(self) -> None:
        """Truncate a torn trailing write before appending after it.

        Each record is written as one ``line + "\\n"`` chunk, so a
        crash mid-append leaves a tail with *no* final newline.  Left
        in place, the next appended record would turn that fragment
        into a corrupt mid-file line and poison every later
        :meth:`load`; cutting back to the last newline restores the
        invariant that the file is whole lines of whole records.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            try:
                fh.seek(-1, os.SEEK_END)
            except OSError:  # empty file
                return
            if fh.read(1) == b"\n":
                return
            size = fh.tell()
            # Walk back in fixed-size blocks to find the last newline —
            # the scan is bounded by the torn tail's length, not the
            # file's.
            block = 4096
            keep = 0
            pos = size
            while pos > 0:
                step = min(block, pos)
                fh.seek(pos - step)
                chunk = fh.read(step)
                nl = chunk.rfind(b"\n")
                if nl != -1:
                    keep = pos - step + nl + 1
                    break
                pos -= step
        with open(self.path, "rb+") as fh:
            fh.truncate(keep)

    def resume(
        self, tasks: "list[TaskSpec]"
    ) -> "tuple[dict[str, dict], list[TaskSpec]]":
        """Split ``tasks`` into (completed records, still-pending tasks).

        Streaming: only records whose hash one of ``tasks`` actually
        carries are kept, so resuming against a store that also holds
        foreign campaigns (or telemetry) costs memory proportional to
        the task list, not the store.
        """
        wanted = {t.task_hash() for t in tasks}
        done: dict[str, dict] = {}
        for rec in self.iter_records():
            if rec["hash"] in wanted:
                done[rec["hash"]] = rec  # duplicates: last wins
        pending = [t for t in tasks if t.task_hash() not in done]
        return done, pending

    def count(self) -> int:
        """Number of distinct record hashes, without materializing
        payloads.

        Each line's hash is sliced straight out of the library's own
        serialization prefix (``{"hash": "...``) when it matches;
        anything else — hand-written records with reordered keys,
        escaped quotes — falls back to a full JSON parse of that line
        only.  Corrupt lines raise :class:`StoreError` exactly as
        :meth:`load` would.
        """
        hashes: set[str] = set()
        for lineno, line in self._complete_lines():
            if not line.strip():
                continue
            h = self._fast_hash(line)
            if h is None:
                h = self._parse(lineno, line)["hash"]
            hashes.add(h)
        return len(hashes)

    @staticmethod
    def _fast_hash(line: str) -> "str | None":
        """Extract the hash from a library-serialized line, or ``None``
        when the line needs a real parse (foreign key order, escapes)."""
        if not line.startswith(_HASH_PREFIX):
            return None
        end = line.find('"', len(_HASH_PREFIX))
        if end == -1:
            return None
        h = line[len(_HASH_PREFIX):end]
        if "\\" in h:
            return None
        return h

    def info(self) -> dict:
        """Layout facts for ``repro store info`` — streams hashes only,
        never record payloads."""
        exists = self.path.exists()
        return {
            "backend": "jsonl",
            "url": self.url,
            "exists": exists,
            "records": self.count(),
            "bytes": self.path.stat().st_size if exists else 0,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return self.count()
