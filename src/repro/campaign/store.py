"""JSONL result store: crash-safe persistence and resume.

One campaign store is one append-only file of JSON records, one per
line, each carrying the task's content hash, its full parameters and
its aggregated statistics.  Append-only JSONL gives exactly the
durability model a long campaign needs:

- every completed task is flushed to disk as soon as its result
  arrives, so killing the process loses at most the tasks in flight;
- a crash mid-write leaves at most one truncated *trailing* line,
  which the readers silently drop (the task simply reruns on resume)
  — corruption anywhere *else* is a real integrity problem and raises
  :class:`StoreError`;
- resuming is a pure set difference: tasks whose hash already appears
  in the store are served from it, everything else runs.

Floats survive the JSON round-trip exactly (``json`` serializes via
``repr``), so aggregates computed from resumed records are
bit-identical to a single uninterrupted run.

Reading is *streaming*: :meth:`ResultStore.iter_records` yields one
record at a time in file order without ever holding the file body in
memory, so a multi-GB store can be folded incrementally
(``repro report``, resume matching).  :meth:`ResultStore.load` remains
the materialize-everything convenience built on top of it.

Since the hardening layer (``docs/DESIGN.md`` §10) every appended
record is additionally sealed with a per-record CRC32
(:mod:`repro.store.integrity`); readers verify and strip the seal, so
bit rot is *detected* (not silently aggregated) while loaded records
still compare equal to what was appended, and pre-checksum stores read
unchanged.

This class is also the ``jsonl`` backend of the pluggable storage
layer (:mod:`repro.store`, ``docs/DESIGN.md`` §9) — the default one,
and the durability model the other backends must match.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from typing import Iterator

from repro.campaign.spec import TaskSpec

__all__ = ["ResultStore", "StoreError", "StoreIntegrityWarning"]


class StoreError(RuntimeError):
    """A result store violates its integrity contract."""


class StoreIntegrityWarning(UserWarning):
    """A tolerant store reader skipped a corrupt record.

    Emitted (once per distinct site, the default warning dedup) by the
    concurrent backends, whose crash footprint can legitimately include
    a corrupt joined line (see :meth:`ResultStore._repair_torn_tail`'s
    shared mode); the skip is also counted on the store instance
    (``corrupt_skipped``) and in ``METRICS`` as
    ``store.corrupt_skipped``, so campaigns and ``repro store verify``
    can surface it as a number, not just a warning.
    """


#: Fast-path prefix for extracting a record's hash without parsing the
#: whole payload: every record the library writes starts exactly like
#: this (``json.dumps`` of a dict whose first key is ``"hash"``).
_HASH_PREFIX = '{"hash": "'


class ResultStore:
    """Append-only JSONL store of per-task result records.

    Parameters
    ----------
    path:
        File to append to; created (with parents) on first write.
    tolerant:
        Reader mode for corrupt *complete* lines: ``False`` (default)
        raises :class:`StoreError` — right for a single-writer file,
        where mid-file corruption can only mean damage; ``True`` skips
        the line with a :class:`StoreIntegrityWarning` and counts it
        (``corrupt_skipped``) — right for files with concurrent
        writers, where a crash can legitimately leave one corrupt
        joined line (see ``shared``).
    shared:
        Multi-writer mode.  The default torn-tail salvage *truncates*
        the fragment, which is unsafe when another process may have
        already appended a fresh record after it; ``shared=True``
        instead neutralizes the torn tail by appending a single
        newline (an atomic ``O_APPEND`` write), turning the fragment
        into one corrupt complete line that tolerant readers skip.
        The fragment's record is lost either way — its task hash is
        missing, so resume simply re-executes it.

    The store is usable as a context manager; :meth:`close` is also
    safe to call repeatedly.  Records are plain dicts with at least a
    ``"hash"`` key (see :func:`repro.campaign.executor.execute_task`
    for the full schema); on append each is sealed with a per-record
    CRC32 (:mod:`repro.store.integrity`), and readers verify and strip
    the seal, so loaded records compare equal to the records that were
    appended.  Pre-checksum stores read fine (no seal → no verdict).
    """

    #: Leases (:mod:`repro.store.protocol`) need multi-writer claim
    #: atomicity a single append-only file cannot provide.
    supports_leases: bool = False

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        tolerant: bool = False,
        shared: bool = False,
    ) -> None:
        self.path = pathlib.Path(path)
        self.tolerant = bool(tolerant)
        self.shared = bool(shared)
        #: Corrupt records skipped by tolerant reads since construction.
        self.corrupt_skipped = 0
        self._fh = None

    @property
    def url(self) -> str:
        """Canonical store URL (:func:`repro.store.open_store` form)."""
        return str(self.path)

    def _complete_lines(self) -> "Iterator[tuple[int, str]]":
        """Stream ``(lineno, text)`` for every *complete* line.

        A torn trailing write — the crash footprint, and nothing else:
        records are written as one ``line + "\\n"`` chunk, so an
        interrupted append leaves a tail with *no* final newline — is
        dropped silently.  The file is read incrementally; memory use
        is one line, never the file.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            prev: "bytes | None" = None
            lineno = 0
            for raw in fh:
                if prev is not None:
                    lineno += 1
                    yield lineno, prev.decode()
                prev = raw
            if prev is not None and prev.endswith(b"\n"):
                yield lineno + 1, prev.decode()
            # else: torn trailing write — drop it unconditionally; even
            # if the fragment happens to parse (flush cut exactly at
            # the closing brace), the next append() truncates it from
            # disk, so serving it as a cached record here would lose it
            # silently.

    def _parse(self, lineno: int, line: str) -> dict:
        """Decode one line into a verified record or raise
        :class:`StoreError`.

        A malformed line anywhere but the torn tail — including a
        corrupt but newline-terminated final record — means the file
        was hand-edited or damaged (or, in ``shared`` files, a crashed
        peer's joined write).  A line that parses but fails its CRC32
        seal (:mod:`repro.store.integrity`) is bit rot and equally
        corrupt.  The returned record has the seal stripped, so it
        equals the record that was appended.
        """
        from repro.store.integrity import check_record

        try:
            rec = json.loads(line)
            if not isinstance(rec, dict) or "hash" not in rec:
                raise ValueError("record is not a dict with a 'hash' key")
        except ValueError as exc:
            raise StoreError(
                f"{self.path}:{lineno}: corrupt record ({exc})"
            ) from exc
        rec, verdict = check_record(rec)
        if verdict is False:
            raise StoreError(
                f"{self.path}:{lineno}: record failed its checksum "
                f"(hash {str(rec.get('hash'))[:16]!r}...)"
            )
        return rec

    def _skip_corrupt(self, lineno: int, error: StoreError) -> None:
        """Count and announce one tolerated corrupt line."""
        self.corrupt_skipped += 1
        from repro.obs.metrics import METRICS

        METRICS.inc("store.corrupt_skipped")
        warnings.warn(
            f"skipping corrupt store record ({error})", StoreIntegrityWarning,
            stacklevel=3,
        )

    def iter_records(self) -> "Iterator[dict]":
        """Stream every record in file order (duplicates included).

        This is the storage-layer primitive aggregation folds over:
        constant memory regardless of store size.  Duplicate hashes are
        *not* collapsed here — a fold that needs last-wins semantics
        (like :meth:`load`) applies them itself, which a plain dict
        update does for free.  In ``tolerant`` mode corrupt lines are
        skipped with a counted :class:`StoreIntegrityWarning` instead
        of raising (the lost record's task re-executes on resume).
        """
        for lineno, line in self._complete_lines():
            if not line.strip():
                continue  # blank lines carry no record
            try:
                rec = self._parse(lineno, line)
            except StoreError as exc:
                if not self.tolerant:
                    raise
                self._skip_corrupt(lineno, exc)
                continue
            yield rec

    def iter_intact(self) -> "Iterator[dict]":
        """Stream only the records that parse and verify, regardless of
        the store's ``tolerant`` mode — the ``repro store repair``
        primitive (corrupt lines are counted, never raised)."""
        for lineno, line in self._complete_lines():
            if not line.strip():
                continue
            try:
                yield self._parse(lineno, line)
            except StoreError as exc:
                self._skip_corrupt(lineno, exc)

    def load(self) -> "dict[str, dict]":
        """Read all records, keyed by task hash (duplicates: last wins).

        A torn *final* line is dropped silently; a malformed line
        anywhere else raises :class:`StoreError` — see
        :meth:`iter_records`, which this materializes.
        """
        records: dict[str, dict] = {}
        for rec in self.iter_records():
            records[rec["hash"]] = rec
        return records

    def append(self, record: dict) -> None:
        """Seal the record with its CRC32, append and flush it to the
        OS immediately (see :mod:`repro.store.integrity`)."""
        from repro.store.integrity import seal_record

        if "hash" not in record:
            raise ValueError("record must carry a 'hash' key")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(seal_record(record)) + "\n")
        self._fh.flush()

    def _repair_torn_tail(self) -> None:
        """Neutralize a torn trailing write before appending after it.

        Each record is written as one ``line + "\\n"`` chunk, so a
        crash mid-append leaves a tail with *no* final newline.  Left
        in place, the next appended record would turn that fragment
        into a corrupt mid-file line and poison every later
        :meth:`load`.  A single-writer file (default) truncates back to
        the last newline.  A ``shared`` file must *not* truncate — a
        concurrent peer may already have appended a whole record after
        the point this process last saw, and truncation would destroy
        it; instead the fragment is terminated with one atomic
        ``O_APPEND`` newline, becoming a corrupt complete line that the
        (tolerant) readers of shared files skip.  In the worst
        interleaving two processes both append the newline — a blank
        line, which readers already ignore.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            try:
                fh.seek(-1, os.SEEK_END)
            except OSError:  # empty file
                return
            if fh.read(1) == b"\n":
                return
            if self.shared:
                with open(self.path, "ab") as afh:
                    afh.write(b"\n")
                return
            size = fh.tell()
            # Walk back in fixed-size blocks to find the last newline —
            # the scan is bounded by the torn tail's length, not the
            # file's.
            block = 4096
            keep = 0
            pos = size
            while pos > 0:
                step = min(block, pos)
                fh.seek(pos - step)
                chunk = fh.read(step)
                nl = chunk.rfind(b"\n")
                if nl != -1:
                    keep = pos - step + nl + 1
                    break
                pos -= step
        with open(self.path, "rb+") as fh:
            fh.truncate(keep)

    def resume(
        self, tasks: "list[TaskSpec]"
    ) -> "tuple[dict[str, dict], list[TaskSpec]]":
        """Split ``tasks`` into (completed records, still-pending tasks).

        Streaming: only records whose hash one of ``tasks`` actually
        carries are kept, so resuming against a store that also holds
        foreign campaigns (or telemetry) costs memory proportional to
        the task list, not the store.
        """
        wanted = {t.task_hash() for t in tasks}
        done: dict[str, dict] = {}
        for rec in self.iter_records():
            if rec["hash"] in wanted:
                done[rec["hash"]] = rec  # duplicates: last wins
        pending = [t for t in tasks if t.task_hash() not in done]
        return done, pending

    def count(self) -> int:
        """Number of distinct record hashes, without materializing
        payloads.

        Each line's hash is sliced straight out of the library's own
        serialization prefix (``{"hash": "...``) when it matches;
        anything else — hand-written records with reordered keys,
        escaped quotes — falls back to a full JSON parse of that line
        only.  Corrupt lines raise :class:`StoreError` exactly as
        :meth:`load` would.
        """
        hashes: set[str] = set()
        for lineno, line in self._complete_lines():
            if not line.strip():
                continue
            h = self._fast_hash(line)
            if h is None:
                try:
                    h = self._parse(lineno, line)["hash"]
                except StoreError as exc:
                    if not self.tolerant:
                        raise
                    self._skip_corrupt(lineno, exc)
                    continue
            hashes.add(h)
        return len(hashes)

    @staticmethod
    def _fast_hash(line: str) -> "str | None":
        """Extract the hash from a library-serialized line, or ``None``
        when the line needs a real parse (foreign key order, escapes).
        The line must also close its JSON object — a neutralized torn
        fragment (shared-mode salvage) starts like a real record but
        never ends in ``}``, and must not be counted as one."""
        if not line.startswith(_HASH_PREFIX) or not line.rstrip().endswith("}"):
            return None
        end = line.find('"', len(_HASH_PREFIX))
        if end == -1:
            return None
        h = line[len(_HASH_PREFIX):end]
        if "\\" in h:
            return None
        return h

    def verify(self) -> dict:
        """Integrity scan for ``repro store verify``: walk every
        complete line, parse it and check its seal, without ever
        raising — corruption becomes numbers, not exceptions.

        Returns ``{"records", "corrupt", "sealed", "unsealed",
        "torn_tail"}``: intact record lines (sealed = carrying a
        verified CRC32, unsealed = pre-checksum records accepted as
        is), corrupt lines (malformed or failing their seal), and
        whether the file currently ends in a torn write (a live or
        crashed writer's footprint — salvaged on the next append).
        """
        from repro.store.integrity import check_record

        sealed = unsealed = corrupt = 0
        for lineno, line in self._complete_lines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict) or "hash" not in rec:
                    raise ValueError("not a record")
            except ValueError:
                corrupt += 1
                continue
            verdict = check_record(rec)[1]
            if verdict is False:
                corrupt += 1
            elif verdict is True:
                sealed += 1
            else:
                unsealed += 1
        torn = False
        if self.path.exists() and self.path.stat().st_size:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn = fh.read(1) != b"\n"
        return {
            "records": sealed + unsealed,
            "corrupt": corrupt,
            "sealed": sealed,
            "unsealed": unsealed,
            "torn_tail": torn,
        }

    def info(self) -> dict:
        """Layout facts for ``repro store info`` — streams hashes only,
        never record payloads."""
        exists = self.path.exists()
        return {
            "backend": "jsonl",
            "url": self.url,
            "exists": exists,
            "records": self.count(),
            "bytes": self.path.stat().st_size if exists else 0,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return self.count()
