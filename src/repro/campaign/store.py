"""JSONL result store: crash-safe persistence and resume.

One campaign store is one append-only file of JSON records, one per
line, each carrying the task's content hash, its full parameters and
its aggregated statistics.  Append-only JSONL gives exactly the
durability model a long campaign needs:

- every completed task is flushed to disk as soon as its result
  arrives, so killing the process loses at most the tasks in flight;
- a crash mid-write leaves at most one truncated *trailing* line,
  which :meth:`ResultStore.load` silently drops (the task simply
  reruns on resume) — corruption anywhere *else* is a real integrity
  problem and raises :class:`StoreError`;
- resuming is a pure set difference: tasks whose hash already appears
  in the store are served from it, everything else runs.

Floats survive the JSON round-trip exactly (``json`` serializes via
``repr``), so aggregates computed from resumed records are
bit-identical to a single uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.campaign.spec import TaskSpec

__all__ = ["ResultStore", "StoreError"]


class StoreError(RuntimeError):
    """A result store violates its integrity contract."""


class ResultStore:
    """Append-only JSONL store of per-task result records.

    Parameters
    ----------
    path:
        File to append to; created (with parents) on first write.

    The store is usable as a context manager; :meth:`close` is also
    safe to call repeatedly.  Records are plain dicts with at least a
    ``"hash"`` key (see :func:`repro.campaign.executor.execute_task`
    for the full schema).
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = pathlib.Path(path)
        self._fh = None

    def load(self) -> "dict[str, dict]":
        """Read all records, keyed by task hash.

        A torn *final* line is dropped silently.  Torn means the crash
        footprint and nothing else: records are written as one
        ``line + "\\n"`` chunk, so an interrupted append leaves a tail
        with *no* final newline.  A malformed line anywhere else —
        including a corrupt but newline-terminated final record —
        means the file was hand-edited or damaged, and raises
        :class:`StoreError` rather than silently recomputing (or
        worse, trusting) half a campaign.
        """
        if not self.path.exists():
            return {}
        data = self.path.read_bytes()
        lines = data.decode().splitlines()
        if data and not data.endswith(b"\n") and lines:
            # Torn trailing write: drop it unconditionally — even if the
            # fragment happens to parse (flush cut exactly at the closing
            # brace), the next append() truncates it from disk, so
            # serving it as a cached record here would lose it silently.
            lines.pop()
        records: dict[str, dict] = {}
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue  # blank lines carry no record
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict) or "hash" not in rec:
                    raise ValueError("record is not a dict with a 'hash' key")
            except ValueError as exc:
                raise StoreError(
                    f"{self.path}:{lineno + 1}: corrupt record ({exc})"
                ) from exc
            records[rec["hash"]] = rec
        return records

    def append(self, record: dict) -> None:
        """Append one record and flush it to the OS immediately."""
        if "hash" not in record:
            raise ValueError("record must carry a 'hash' key")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def _repair_torn_tail(self) -> None:
        """Truncate a torn trailing write before appending after it.

        Each record is written as one ``line + "\\n"`` chunk, so a
        crash mid-append leaves a tail with *no* final newline.  Left
        in place, the next appended record would turn that fragment
        into a corrupt mid-file line and poison every later
        :meth:`load`; cutting back to the last newline restores the
        invariant that the file is whole lines of whole records.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(self.path, "rb+") as fh:
            fh.truncate(keep)

    def resume(
        self, tasks: "list[TaskSpec]"
    ) -> "tuple[dict[str, dict], list[TaskSpec]]":
        """Split ``tasks`` into (completed records, still-pending tasks)."""
        done = self.load()
        pending = [t for t in tasks if t.task_hash() not in done]
        return done, pending

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.load())
