"""Parallel, resumable experiment-campaign engine.

The paper's evaluation is a large grid of *independent* fault-injected
solves — (matrix × scheme × α × checkpoint-interval × repetition) —
which :mod:`repro.sim.engine` executes one point at a time.  This
package turns such a grid into a first-class *campaign*:

- :mod:`repro.campaign.spec` — declarative :class:`CampaignSpec` /
  :class:`TaskSpec` dataclasses that expand a parameter grid into a
  flat list of content-hashable tasks, preserving the library's
  deterministic ``spawn_named`` seed derivation so parallel and serial
  execution are bit-identical;
- :mod:`repro.campaign.executor` — a :class:`concurrent.futures
  .ProcessPoolExecutor`-based runner with chunked scheduling,
  ordered-result collection and a serial fallback for ``jobs=1``;
- :mod:`repro.campaign.store` — the single-file JSONL result store
  keyed by task hash: crash-safe append, cache-hit skipping and
  resume of half-finished campaigns.  It is also the default backend
  of the pluggable storage layer (:mod:`repro.store`), whose
  ``sharded:`` / ``sqlite:`` backends add safe concurrent
  multi-process writers, streaming aggregation over partial stores
  and the lease-coordinated serve mode;
- :mod:`repro.campaign.progress` — throughput / ETA reporting;
- :mod:`repro.campaign.aggregate` — regrouping of raw per-task records
  into the existing :class:`~repro.sim.engine.RunStatistics` /
  :class:`~repro.sim.results.Table1Row` /
  :class:`~repro.sim.results.Figure1Point` shapes.

The experiment drivers (:func:`repro.sim.experiments.run_table1`,
:func:`repro.sim.experiments.run_figure1` and ``python -m repro``)
execute through this engine; their public signatures and outputs are
unchanged, with new ``jobs`` / ``store`` / ``progress`` knobs.
"""

from repro.campaign.spec import CampaignSpec, TaskSpec
from repro.campaign.store import ResultStore, StoreError
from repro.campaign.progress import ProgressReporter
from repro.campaign.executor import default_jobs, execute_task, run_campaign
from repro.campaign.aggregate import (
    aggregate_figure1,
    aggregate_figure1_store,
    aggregate_table1,
    aggregate_table1_store,
    records_for_tasks,
    stats_from_record,
)

__all__ = [
    "CampaignSpec",
    "TaskSpec",
    "ResultStore",
    "StoreError",
    "ProgressReporter",
    "default_jobs",
    "execute_task",
    "run_campaign",
    "aggregate_table1",
    "aggregate_figure1",
    "aggregate_table1_store",
    "aggregate_figure1_store",
    "records_for_tasks",
    "stats_from_record",
]
