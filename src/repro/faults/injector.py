"""Poisson fault process and the per-iteration strike sampler.

Section 5.1 of the paper fixes the injection protocol this library
reproduces:

- faults are **bit flips** occurring independently at each step under
  an exponential distribution with parameter λ;
- ``Titer`` is normalized to one, so each iteration is one unit of
  exposure and the number of strikes in an iteration is
  ``Poisson(λ·Titer)``;
- λ is chosen **inversely proportional to the memory size M** of the
  protected state (matrix arrays + iteration vectors):
  ``λ = α / M`` with ``α ∈ (0, 1)``, so the expected number of
  iterations between faults is matrix-independent;
- strikes land uniformly over the protected words — the matrix arrays
  ``Val``/``Colid``/``Rowidx`` or the CG vectors — while checksums and
  checksum arithmetic are reliable (selective reliability).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.bitflip import flip_bits_array
from repro.faults.record import FaultRecord
from repro.util.rng import as_generator
from repro.util.validate import check_positive

__all__ = ["FaultModel", "FaultInjector"]


@dataclass(frozen=True)
class FaultModel:
    """The exponential fault model of Section 4/5.

    Attributes
    ----------
    alpha:
        Proportionality constant in ``λ = α / M``; the paper sweeps its
        reciprocal (the *normalized MTBF*) over 10²…10⁵.
    memory_words:
        ``M`` — number of corruptible 64-bit words.
    t_iter:
        Duration of one iteration in normalized time units (1 in the
        paper's injection protocol).
    """

    alpha: float
    memory_words: int
    t_iter: float = 1.0

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_positive("memory_words", self.memory_words)
        check_positive("t_iter", self.t_iter)

    @property
    def word_rate(self) -> float:
        """λ_word = α / M — fault rate of a single memory word."""
        return self.alpha / self.memory_words

    @property
    def rate(self) -> float:
        """Cumulative rate λ = M · λ_word = α faults per normalized
        time unit, accumulated over the whole protected memory.

        This is the λ that enters the performance model's
        ``q = e^{−λT}``; because it equals α regardless of matrix size,
        the expected number of CG steps between faults is
        matrix-independent, exactly as Section 5.1 requires.
        """
        return self.alpha / self.t_iter

    @property
    def normalized_mtbf(self) -> float:
        """1/α — expected iterations between faults (matrix-independent)."""
        return 1.0 / self.alpha

    def chunk_success_probability(self, t_chunk: float) -> float:
        """``q = e^{−λT}`` for a chunk of duration ``t_chunk``."""
        return float(np.exp(-self.rate * t_chunk))

    def strikes_per_iteration(self, rng: np.random.Generator) -> int:
        """Sample the number of faults striking one iteration (Poisson(α))."""
        return int(rng.poisson(self.rate * self.t_iter))


class FaultInjector:
    """Samples strikes and applies bit flips to registered arrays.

    Targets are registered by name with a weight equal to their word
    count, so a strike lands on any word of the protected state with
    uniform probability, matching the paper's "each memory location …
    is given the chance to fail just once per iteration".

    Parameters
    ----------
    model:
        The :class:`FaultModel` supplying the strike distribution.
    rng:
        Seed or generator driving all sampling.
    """

    def __init__(self, model: FaultModel, rng: "int | np.random.Generator" = None) -> None:
        self.model = model
        self.rng = as_generator(rng)
        self._targets: dict[str, np.ndarray] = {}
        self._on_strike: dict[str, "object"] = {}
        self._tables: "tuple[list[str], np.ndarray] | None" = None
        self.records: list[FaultRecord] = []

    # ------------------------------------------------------------------
    # target registry
    # ------------------------------------------------------------------
    def register(self, name: str, arr: np.ndarray, *, on_strike=None) -> None:
        """Register (or re-register) a corruptible array under ``name``.

        ``on_strike`` — optional callable ``(position) -> None`` invoked
        after every flip applied to this target (sampling-free, so it
        cannot perturb the RNG stream).  The resilience engine uses it
        to keep the workspace's strike-undo ledger and the live
        matrix's structure flag in sync with injected corruption.
        """
        if arr.dtype not in (np.dtype(np.float64), np.dtype(np.int64)):
            raise TypeError(f"target {name!r} must be float64 or int64, got {arr.dtype}")
        self._targets[name] = arr
        if on_strike is not None:
            self._on_strike[name] = on_strike
        else:
            self._on_strike.pop(name, None)
        self._tables = None

    def unregister(self, name: str) -> None:
        """Remove a target (e.g. a vector freed by the solver)."""
        self._targets.pop(name, None)
        self._on_strike.pop(name, None)
        self._tables = None

    @property
    def target_names(self) -> list[str]:
        """Names of currently registered targets."""
        return list(self._targets)

    @property
    def total_words(self) -> int:
        """Total corruptible words across registered targets."""
        return sum(arr.size for arr in self._targets.values())

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def sample_strikes(self, *, n_strikes: int | None = None) -> list[tuple[str, int, int]]:
        """Sample this iteration's strikes **without applying them**.

        Each strike is ``(target_name, position, bit)`` with the target
        chosen proportionally to its word count (uniform over the whole
        protected memory).  The solver engine applies each strike in
        the right temporal window (e.g. output-vector strikes only
        after the product is computed).

        Parameters
        ----------
        n_strikes:
            Override the Poisson sample (used by tests for determinism).
        """
        if not self._targets:
            return []
        if n_strikes is None:
            n_strikes = self.model.strikes_per_iteration(self.rng)
        if n_strikes == 0:
            return []
        # The name/probability tables depend only on the registry, which
        # changes rarely (normally: never after solver setup) — caching
        # them keeps the per-iteration sampling allocation-free.
        if self._tables is None:
            names = list(self._targets)
            sizes = np.array([self._targets[n].size for n in names], dtype=np.float64)
            self._tables = (names, sizes / sizes.sum())
        names, probs = self._tables
        strikes: list[tuple[str, int, int]] = []
        for _ in range(n_strikes):
            name = names[int(self.rng.choice(len(names), p=probs))]
            pos = int(self.rng.integers(self._targets[name].size))
            bit = int(self.rng.integers(64))
            strikes.append((name, pos, bit))
        return strikes

    def apply_strike(self, iteration: int, strike: tuple[str, int, int]) -> FaultRecord:
        """Apply one sampled strike and record it."""
        name, pos, bit = strike
        return self.inject_at(iteration, name, pos, bit)

    def inject_iteration(self, iteration: int, *, n_strikes: int | None = None) -> list[FaultRecord]:
        """Sample and immediately apply this iteration's strikes."""
        return [
            self.apply_strike(iteration, s)
            for s in self.sample_strikes(n_strikes=n_strikes)
        ]

    def revert(self, record: FaultRecord) -> None:
        """Undo a recorded flip (models TMR restoring a voted value)."""
        arr = self._targets[record.target].reshape(-1)
        flip_bits_array(arr, np.array([record.position]), np.array([record.bit]))

    def inject_at(self, iteration: int, name: str, position: int, bit: int) -> FaultRecord:
        """Deterministically flip one chosen bit (test hook)."""
        arr = self._targets[name].reshape(-1)
        old = arr[position].item()
        flip_bits_array(arr, np.array([position]), np.array([bit]))
        rec = FaultRecord(
            iteration=iteration,
            target=name,
            position=position,
            bit=bit,
            old_value=old,
            new_value=arr[position].item(),
        )
        self.records.append(rec)
        hook = self._on_strike.get(name)
        if hook is not None:
            hook(position)
        return rec
