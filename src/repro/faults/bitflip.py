"""IEEE-754 / integer bit-flip primitives.

A silent data corruption flips one bit of a stored word.  For float64
that can change the sign, exponent or mantissa (flips in low mantissa
bits produce tiny perturbations — the false-negative regime Theorem 2's
tolerance deliberately ignores); for int64 index arrays a flip can send
a column index or row pointer far out of range.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator

__all__ = ["flip_bit_float64", "flip_bit_int64", "flip_bits_array"]


def flip_bit_float64(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = LSB of the mantissa, 63 = sign) of a float64."""
    if not 0 <= bit <= 63:
        raise ValueError(f"bit must be in [0, 63], got {bit}")
    as_int = np.float64(value).view(np.uint64)
    flipped = as_int ^ np.uint64(1 << bit)
    return float(flipped.view(np.float64))


def flip_bit_int64(value: int, bit: int) -> int:
    """Flip bit ``bit`` of an int64 (two's complement, 63 = sign)."""
    if not 0 <= bit <= 63:
        raise ValueError(f"bit must be in [0, 63], got {bit}")
    as_u = np.int64(value).view(np.uint64)
    flipped = as_u ^ np.uint64(1 << bit)
    return int(flipped.view(np.int64))


def flip_bits_array(
    arr: np.ndarray,
    positions: np.ndarray,
    bits: np.ndarray,
) -> None:
    """Flip ``bits[i]`` of ``arr[positions[i]]`` in place, for each ``i``.

    ``arr`` must be float64 or int64; the flip happens on the raw
    64-bit pattern either way.
    """
    positions = np.asarray(positions, dtype=np.int64)
    bits = np.asarray(bits, dtype=np.uint64)
    if positions.shape != bits.shape:
        raise ValueError("positions and bits must have the same shape")
    if arr.dtype == np.float64:
        view = arr.view(np.uint64)
    elif arr.dtype == np.int64:
        view = arr.view(np.uint64)
    else:
        raise TypeError(f"unsupported dtype for bit flips: {arr.dtype}")
    view[positions] ^= np.uint64(1) << bits


def random_flip(
    arr: np.ndarray, rng: "int | np.random.Generator" = None
) -> tuple[int, int]:
    """Flip one uniformly random bit of one uniformly random element.

    Returns ``(position, bit)`` for audit.
    """
    rng = as_generator(rng)
    if arr.size == 0:
        raise ValueError("cannot flip a bit in an empty array")
    pos = int(rng.integers(arr.size))
    bit = int(rng.integers(64))
    flip_bits_array(arr.reshape(-1), np.array([pos]), np.array([bit]))
    return pos, bit
