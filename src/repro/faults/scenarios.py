"""Per-iteration injection plans for the CG fault study.

Binds a :class:`~repro.faults.injector.FaultInjector` to the live state
of a CG solve: the matrix arrays and the iteration vectors the paper
lists as corruptible ("these bit flips can strike either the matrix —
the elements of Val, Colid and Rowidx — or any entry of the CG vectors
r_i, q, p_i or x_i").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.faults.injector import FaultInjector, FaultModel
from repro.faults.record import FaultRecord

__all__ = ["CGTargets", "IterationFaultPlan"]

#: The vector names of Algorithm 1 that the paper's injector may strike.
CG_VECTOR_NAMES: tuple[str, ...] = ("x", "r", "p", "q")


@dataclass
class CGTargets:
    """Live references to the corruptible state of a CG solve."""

    matrix: CSRMatrix
    vectors: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def memory_words(self) -> int:
        """Total corruptible words M (matrix arrays + vectors)."""
        return self.matrix.memory_words + sum(v.size for v in self.vectors.values())


class IterationFaultPlan:
    """Injects the sampled strikes for each iteration into the CG state.

    Parameters
    ----------
    alpha:
        Proportionality constant of the fault rate (λ·M = α per
        iteration); the reciprocal is the normalized MTBF.
    targets:
        The matrix/vector state to corrupt.
    rng:
        Seed or generator.
    include_matrix / include_vectors:
        Restrict strikes to a subset of the state (ablation studies).
    """

    def __init__(
        self,
        alpha: float,
        targets: CGTargets,
        rng: "int | np.random.Generator" = None,
        *,
        include_matrix: bool = True,
        include_vectors: bool = True,
    ) -> None:
        self.targets = targets
        self.model = FaultModel(alpha=alpha, memory_words=targets.memory_words)
        self.injector = FaultInjector(self.model, rng)
        if include_matrix:
            self.injector.register("val", targets.matrix.val)
            self.injector.register("colid", targets.matrix.colid)
            self.injector.register("rowidx", targets.matrix.rowidx)
        if include_vectors:
            for name, vec in targets.vectors.items():
                self.injector.register(name, vec)

    def rebind_vector(self, name: str, vec: np.ndarray) -> None:
        """Point the injector at a vector the solver reallocated."""
        self.targets.vectors[name] = vec
        self.injector.register(name, vec)

    def rebind_matrix(self, matrix: CSRMatrix) -> None:
        """Point the injector at restored matrix arrays after a rollback."""
        self.targets.matrix = matrix
        self.injector.register("val", matrix.val)
        self.injector.register("colid", matrix.colid)
        self.injector.register("rowidx", matrix.rowidx)

    def strike(self, iteration: int, *, n_strikes: int | None = None) -> list[FaultRecord]:
        """Apply this iteration's strikes; returns audit records."""
        return self.injector.inject_iteration(iteration, n_strikes=n_strikes)

    @property
    def records(self) -> list[FaultRecord]:
        """All strikes applied so far."""
        return self.injector.records
