"""Audit records for injected faults.

Every injected flip is recorded so tests can assert exactly which
corruption the ABFT layer was asked to detect, and experiment logs can
correlate recoveries with strikes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultRecord"]


@dataclass(frozen=True)
class FaultRecord:
    """One injected bit flip.

    Attributes
    ----------
    iteration:
        Solver iteration during which the fault struck.
    target:
        Logical array name (``"val"``, ``"colid"``, ``"rowidx"``,
        ``"x"``, ``"r"``, ``"p"``, ``"q"``, ``"computation"``).
    position:
        Flat index of the corrupted word within the target array.
    bit:
        Bit index flipped (0 = LSB, 63 = sign bit).
    old_value:
        The word's value before the flip (float or int).
    new_value:
        The word's value after the flip.
    """

    iteration: int
    target: str
    position: int
    bit: int
    old_value: float
    new_value: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"iter {self.iteration}: flip {self.target}[{self.position}] "
            f"bit {self.bit}: {self.old_value!r} -> {self.new_value!r}"
        )
