"""Silent-error injection following Section 5.1 of the paper.

Faults are bit flips striking, independently each iteration, either the
matrix arrays (``Val``, ``Colid``, ``Rowidx``) or the iteration vectors
(``r``, ``q``, ``p``, ``x``) of CG, under an exponential/Poisson model
with rate ``λ = α/M`` where ``M`` is the memory footprint in words and
``α ∈ (0, 1)``.  Selective reliability holds: checksum data and
checksum arithmetic are never corrupted.
"""

from repro.faults.bitflip import flip_bit_float64, flip_bit_int64, flip_bits_array
from repro.faults.record import FaultRecord
from repro.faults.injector import FaultInjector, FaultModel
from repro.faults.scenarios import IterationFaultPlan, CGTargets

__all__ = [
    "flip_bit_float64",
    "flip_bit_int64",
    "flip_bits_array",
    "FaultRecord",
    "FaultInjector",
    "FaultModel",
    "IterationFaultPlan",
    "CGTargets",
]
